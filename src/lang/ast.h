// Core syntax objects of Datalog with negation: terms, atoms, literals,
// rules. All flat value types; strings live in the owning Program's tables.
#ifndef TIEBREAK_LANG_AST_H_
#define TIEBREAK_LANG_AST_H_

#include <cstdint>
#include <vector>

#include "lang/symbols.h"

namespace tiebreak {

/// A term is either a constant (index = ConstId in the Program's constant
/// table) or a variable (index = rule-local variable number).
struct Term {
  enum class Kind : uint8_t { kConstant, kVariable };

  Kind kind = Kind::kConstant;
  int32_t index = 0;

  static Term Constant(ConstId c) { return Term{Kind::kConstant, c}; }
  static Term Variable(int32_t v) { return Term{Kind::kVariable, v}; }

  bool is_constant() const { return kind == Kind::kConstant; }
  bool is_variable() const { return kind == Kind::kVariable; }

  friend bool operator==(const Term&, const Term&) = default;
};

/// P(t1, ..., tm). `args.size()` must equal the predicate's declared arity.
struct Atom {
  PredId predicate = 0;
  std::vector<Term> args;

  friend bool operator==(const Atom&, const Atom&) = default;
};

/// An atom or its negation inside a rule body.
struct Literal {
  Atom atom;
  bool positive = true;

  friend bool operator==(const Literal&, const Literal&) = default;
};

/// A <- L1, ..., Ls. Variables are rule-local and numbered 0..num_variables-1;
/// `variable_names` keeps the surface spelling for printing (size ==
/// num_variables).
struct Rule {
  Atom head;
  std::vector<Literal> body;
  int32_t num_variables = 0;
  std::vector<std::string> variable_names;

  /// True when the rule has no variables (every argument is a constant).
  bool is_ground() const { return num_variables == 0; }
};

}  // namespace tiebreak

#endif  // TIEBREAK_LANG_AST_H_
