#include "lang/printer.h"

#include <sstream>

namespace tiebreak {

namespace {

void AppendTerm(const Program& program, const Term& term, const Rule* rule,
                std::ostringstream* out) {
  if (term.is_constant()) {
    *out << program.constant_name(term.index);
    return;
  }
  if (rule != nullptr &&
      term.index < static_cast<int32_t>(rule->variable_names.size()) &&
      !rule->variable_names[term.index].empty()) {
    *out << rule->variable_names[term.index];
  } else {
    *out << "V" << term.index;
  }
}

void AppendAtom(const Program& program, const Atom& atom, const Rule* rule,
                std::ostringstream* out) {
  *out << program.predicate_name(atom.predicate);
  if (atom.args.empty()) return;
  *out << "(";
  for (size_t i = 0; i < atom.args.size(); ++i) {
    if (i > 0) *out << ", ";
    AppendTerm(program, atom.args[i], rule, out);
  }
  *out << ")";
}

}  // namespace

std::string AtomToString(const Program& program, const Atom& atom,
                         const Rule* rule) {
  std::ostringstream out;
  AppendAtom(program, atom, rule, &out);
  return out.str();
}

std::string GroundAtomToString(const Program& program, PredId predicate,
                               const Tuple& tuple) {
  std::ostringstream out;
  out << program.predicate_name(predicate);
  if (!tuple.empty()) {
    out << "(";
    for (size_t i = 0; i < tuple.size(); ++i) {
      if (i > 0) out << ", ";
      out << program.constant_name(tuple[i]);
    }
    out << ")";
  }
  return out.str();
}

std::string RuleToString(const Program& program, const Rule& rule) {
  std::ostringstream out;
  AppendAtom(program, rule.head, &rule, &out);
  if (!rule.body.empty()) {
    out << " :- ";
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (i > 0) out << ", ";
      if (!rule.body[i].positive) out << "not ";
      AppendAtom(program, rule.body[i].atom, &rule, &out);
    }
  }
  out << ".";
  return out.str();
}

std::string ProgramToString(const Program& program) {
  std::ostringstream out;
  for (int32_t r = 0; r < program.num_rules(); ++r) {
    out << RuleToString(program, program.rule(r)) << "\n";
  }
  return out.str();
}

std::string DatabaseToString(const Program& program,
                             const Database& database) {
  std::ostringstream out;
  for (PredId p = 0; p < database.num_predicates(); ++p) {
    for (int64_t row = 0; row < database.NumFacts(p); ++row) {
      out << GroundAtomToString(program, p, database.FactTuple(p, row))
          << ".\n";
    }
  }
  return out.str();
}

}  // namespace tiebreak
