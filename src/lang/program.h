// A Datalog-with-negation program: predicate declarations (name + arity),
// a constant table, and rules. The EDB/IDB split follows the paper: EDB
// predicates are exactly those that appear in no rule head.
#ifndef TIEBREAK_LANG_PROGRAM_H_
#define TIEBREAK_LANG_PROGRAM_H_

#include <string>
#include <string_view>
#include <vector>

#include "lang/ast.h"
#include "lang/symbols.h"
#include "util/status.h"

namespace tiebreak {

/// Declared facts about one predicate symbol.
struct PredicateInfo {
  std::string name;
  int32_t arity = 0;
};

/// Owns the vocabulary (predicates, constants) and the rule set.
///
/// Construction protocol: declare predicates/constants, add rules, then call
/// Validate() once; EDB flags and per-predicate rule indexes are computed
/// lazily and invalidated by further mutation.
class Program {
 public:
  /// Declares (or finds) a predicate. Re-declaring with a different arity is
  /// an error surfaced by Validate(); the first arity wins until then.
  PredId DeclarePredicate(std::string_view name, int32_t arity);

  /// Returns the id of a declared predicate or -1.
  PredId LookupPredicate(std::string_view name) const {
    return predicate_names_.Lookup(name);
  }

  /// Interns a constant symbol.
  ConstId InternConstant(std::string_view name) {
    return constants_.Intern(name);
  }
  /// Returns the id of a known constant or -1.
  ConstId LookupConstant(std::string_view name) const {
    return constants_.Lookup(name);
  }

  /// Appends a rule. The rule must reference declared predicates; full
  /// validation happens in Validate().
  void AddRule(Rule rule);

  /// Structural validation: arities respected, variable indexes in range,
  /// variable-name vectors consistent. Must pass before the program is fed
  /// to grounding, analysis or evaluation.
  Status Validate() const;

  int32_t num_predicates() const {
    return static_cast<int32_t>(predicates_.size());
  }
  int32_t num_constants() const { return constants_.size(); }
  int32_t num_rules() const { return static_cast<int32_t>(rules_.size()); }

  const PredicateInfo& predicate(PredId p) const {
    TIEBREAK_CHECK_GE(p, 0);
    TIEBREAK_CHECK_LT(p, num_predicates());
    return predicates_[p];
  }
  const std::string& predicate_name(PredId p) const {
    return predicate(p).name;
  }
  const std::string& constant_name(ConstId c) const {
    return constants_.Name(c);
  }
  const Rule& rule(int32_t r) const {
    TIEBREAK_CHECK_GE(r, 0);
    TIEBREAK_CHECK_LT(r, num_rules());
    return rules_[r];
  }
  const std::vector<Rule>& rules() const { return rules_; }

  /// True iff `p` appears in no rule head (the paper's EDB predicates).
  bool IsEdb(PredId p) const;

  /// Ids of the rules whose head predicate is `p` (empty for EDB).
  const std::vector<int32_t>& RulesWithHead(PredId p) const;

  /// All EDB / IDB predicate ids, ascending.
  std::vector<PredId> EdbPredicates() const;
  std::vector<PredId> IdbPredicates() const;

 private:
  void EnsureHeadIndex() const;

  std::vector<PredicateInfo> predicates_;
  SymbolTable predicate_names_;
  SymbolTable constants_;
  std::vector<Rule> rules_;

  // Lazy caches (invalidated by AddRule/DeclarePredicate).
  mutable bool head_index_valid_ = false;
  mutable std::vector<std::vector<int32_t>> rules_by_head_;
};

}  // namespace tiebreak

#endif  // TIEBREAK_LANG_PROGRAM_H_
