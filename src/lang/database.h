// The initial database Δ: a finite set of ground facts for the predicates of
// one Program. Following the paper, Δ may contain facts for EDB *and* IDB
// predicates (uniform case); the nonuniform case simply uses a Δ whose IDB
// relations are empty.
#ifndef TIEBREAK_LANG_DATABASE_H_
#define TIEBREAK_LANG_DATABASE_H_

#include <set>
#include <vector>

#include "lang/program.h"
#include "lang/symbols.h"

namespace tiebreak {

/// A set of ground tuples per predicate. Tuples are stored sorted, so
/// iteration order (and everything derived from it) is deterministic.
class Database {
 public:
  /// Creates an empty database shaped after `program`'s predicates. Only the
  /// arity vector is captured; the program may intern more constants later.
  explicit Database(const Program& program);

  /// Inserts a fact; duplicate inserts are no-ops. Arity is CHECKed.
  void Insert(PredId predicate, Tuple tuple);

  /// Streaming-append path for large relations: sorts `tuples`, drops
  /// duplicates, and loads them in one pass — a linear-time set build when
  /// the relation is empty, a hinted merge otherwise — instead of one tree
  /// insert (node allocation + rebalance) per tuple. Million-tuple EDB
  /// generators and the engine's result materialization use this; the
  /// resulting database is identical to per-tuple Insert of the same facts.
  void BulkLoad(PredId predicate, std::vector<Tuple>&& tuples);

  /// Convenience for zero-arity predicates.
  void InsertProposition(PredId predicate) { Insert(predicate, Tuple{}); }

  bool Contains(PredId predicate, const Tuple& tuple) const;

  const std::set<Tuple>& Relation(PredId predicate) const;

  int32_t num_predicates() const {
    return static_cast<int32_t>(relations_.size());
  }

  /// Total fact count across all relations.
  int64_t TotalFacts() const;

  /// All constants mentioned by some fact, deduplicated ascending.
  std::vector<ConstId> ReferencedConstants() const;

  friend bool operator==(const Database&, const Database&) = default;

 private:
  std::vector<int32_t> arities_;
  std::vector<std::set<Tuple>> relations_;
};

}  // namespace tiebreak

#endif  // TIEBREAK_LANG_DATABASE_H_
