// The initial database Δ: a finite set of ground facts for the predicates of
// one Program. Following the paper, Δ may contain facts for EDB *and* IDB
// predicates (uniform case); the nonuniform case simply uses a Δ whose IDB
// relations are empty.
#ifndef TIEBREAK_LANG_DATABASE_H_
#define TIEBREAK_LANG_DATABASE_H_

#include <cstdint>
#include <vector>

#include "lang/program.h"
#include "lang/symbols.h"

namespace tiebreak {

/// A borrowed, read-only view of one relation's flat fact arena: `rows`
/// row-major facts (each arity consecutive ConstIds) at `data`. The
/// engine's borrowed-EDB entry point (the Span<const FactSpan> overload of
/// EvaluateStratified) consumes these directly, so callers that already
/// hold a Database — the grounder above all — hand its arenas to the
/// engine with zero copies. Valid until the owning storage mutates. For
/// arity-0 relations `data` is meaningless and `rows` is 0 or 1.
struct FactSpan {
  const ConstId* data = nullptr;
  int64_t rows = 0;
};

/// A set of ground tuples per predicate in flat columnar storage: each
/// relation is one contiguous ConstId arena holding its rows back-to-back
/// (row r of an arity-k relation occupies entries [r*k, (r+1)*k)), kept
/// sorted lexicographically and duplicate-free. Set semantics with
/// deterministic iteration order, zero per-tuple heap vectors: bulk loads
/// of sorted data are O(n) moves of one flat buffer, membership is a
/// binary search over rows, and consumers (the grounder, the engine's EDB
/// loader) read the arena directly without materializing a Tuple per fact.
/// Per-tuple Insert shifts the arena tail (O(n)); callers building large
/// relations use BulkLoad / BulkLoadFlat.
///
/// Thread safety: const access (FactData, Contains, TotalFacts, ...) is
/// safe from multiple threads; any mutation requires exclusive access.
class Database {
 public:
  /// Creates an empty database shaped after `program`'s predicates. Only the
  /// arity vector is captured; the program may intern more constants later.
  explicit Database(const Program& program);

  /// Storage restore path (src/storage/): reconstructs a database from
  /// arenas read off disk, treating every input as untrusted. Validates
  /// the full invariant set — matching vector sizes, nonnegative arities
  /// and row counts, `rows[p].size() == num_rows[p] * arity[p]` (zero-arity
  /// relations carry no data and 0 or 1 row), every ConstId in
  /// [0, num_constants), and every relation sorted lexicographically with
  /// no duplicate rows — and returns kDataLoss instead of constructing on
  /// any violation. A database this returns is indistinguishable from one
  /// built through Insert/BulkLoadFlat of the same facts.
  static Result<Database> FromArenas(std::vector<int32_t> arities,
                                     std::vector<int64_t> num_rows,
                                     std::vector<std::vector<ConstId>> rows,
                                     int32_t num_constants);

  /// Inserts a fact; duplicate inserts are no-ops. Arity is CHECKed.
  /// O(relation size) per call — intended for small/interactive loads.
  void Insert(PredId predicate, Tuple tuple);

  /// Streaming-append path for large relations: takes the rows in one flat
  /// row-major buffer (count × arity ids), sorts them lexicographically
  /// (skipped when already sorted; arity ≤ 2 sorts packed machine words
  /// instead of permuting rows), drops duplicates, and loads them in one
  /// pass — a plain buffer move when the relation is empty, a linear merge
  /// otherwise. No Tuple is ever allocated. Million-tuple EDB generators
  /// and the engine's result materialization use this; the resulting
  /// database is identical to per-tuple Insert of the same facts. Arity 0
  /// is rejected (use InsertProposition).
  void BulkLoadFlat(PredId predicate, std::vector<ConstId>&& values);

  /// Tuple-vector convenience wrapper around BulkLoadFlat (flattens, then
  /// delegates); kept for callers that naturally hold std::vector<Tuple>.
  void BulkLoad(PredId predicate, std::vector<Tuple>&& tuples);

  /// Convenience for zero-arity predicates.
  void InsertProposition(PredId predicate) { Insert(predicate, Tuple{}); }

  /// Removes every fact of `predicate`'s relation (arity unchanged), making
  /// the next BulkLoadFlat a plain buffer move — the clear-and-reload cycle
  /// the query planner runs on a plan's magic relations per request.
  void ClearRelation(PredId predicate) {
    CheckPredicate(predicate);
    num_rows_[predicate] = 0;
    rows_[predicate].clear();
  }

  /// True iff the fact is present (binary search over the flat rows).
  bool Contains(PredId predicate, const Tuple& tuple) const;

  /// Contains() for a borrowed row of arity(predicate) consecutive ids —
  /// the no-allocation form hot loops use (scratch buffers, arena rows).
  bool ContainsRow(PredId predicate, const ConstId* row) const;

  /// Declared arity of `predicate`'s relation.
  int32_t arity(PredId predicate) const {
    CheckPredicate(predicate);
    return arities_[predicate];
  }

  /// Number of facts in `predicate`'s relation.
  int64_t NumFacts(PredId predicate) const {
    CheckPredicate(predicate);
    return num_rows_[predicate];
  }

  /// The relation's flat row-major arena: NumFacts() rows of arity() ids,
  /// sorted lexicographically, duplicate-free. Valid until the next
  /// mutation of this predicate's relation. Empty (possibly null) for
  /// zero-arity predicates — presence is NumFacts() ∈ {0, 1}.
  const ConstId* FactData(PredId predicate) const {
    CheckPredicate(predicate);
    return rows_[predicate].data();
  }

  /// The relation's arena as a borrowed FactSpan — the zero-copy handle
  /// the engine's borrowed-EDB evaluation path consumes (see FactSpan).
  FactSpan Facts(PredId predicate) const {
    return FactSpan{FactData(predicate), NumFacts(predicate)};
  }

  /// Pointer to fact `row`'s arity() consecutive ids.
  const ConstId* FactRow(PredId predicate, int64_t row) const {
    return FactData(predicate) +
           row * static_cast<int64_t>(arities_[predicate]);
  }

  /// Materializes fact `row` as an owned Tuple (convenience; allocates).
  Tuple FactTuple(PredId predicate, int64_t row) const;

  /// Materializes the whole relation as owned Tuples, in sorted order
  /// (convenience for tests and printing; allocates one vector per fact).
  std::vector<Tuple> Tuples(PredId predicate) const;

  /// Number of relations (one per predicate of the shaping program).
  int32_t num_predicates() const {
    return static_cast<int32_t>(arities_.size());
  }

  /// Total fact count across all relations.
  int64_t TotalFacts() const;

  /// All constants mentioned by some fact, deduplicated ascending.
  std::vector<ConstId> ReferencedConstants() const;

  friend bool operator==(const Database&, const Database&) = default;

 private:
  // Uninitialized shell for FromArenas, which fills the members directly.
  Database() = default;

  void CheckPredicate(PredId predicate) const {
    TIEBREAK_CHECK_GE(predicate, 0);
    TIEBREAK_CHECK_LT(predicate, num_predicates());
  }
  // Index of the first row >= `row` in sorted order (= num rows when all
  // are smaller).
  int64_t LowerBound(PredId predicate, const ConstId* row) const;

  std::vector<int32_t> arities_;
  // Rows per relation. Tracked separately from the arena size because
  // arity-0 relations carry no ids at all (0 or 1 row, no data).
  std::vector<int64_t> num_rows_;
  // One flat row-major arena per relation; see FactData().
  std::vector<std::vector<ConstId>> rows_;
};

}  // namespace tiebreak

#endif  // TIEBREAK_LANG_DATABASE_H_
