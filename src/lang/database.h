// The initial database Δ: a finite set of ground facts for the predicates of
// one Program. Following the paper, Δ may contain facts for EDB *and* IDB
// predicates (uniform case); the nonuniform case simply uses a Δ whose IDB
// relations are empty.
#ifndef TIEBREAK_LANG_DATABASE_H_
#define TIEBREAK_LANG_DATABASE_H_

#include <cstdint>
#include <vector>

#include "lang/program.h"
#include "lang/symbols.h"

namespace tiebreak {

/// A set of ground tuples per predicate. Each relation is a sorted,
/// duplicate-free std::vector<Tuple> — set semantics with deterministic
/// (lexicographic) iteration order, but contiguous storage: bulk loads of
/// sorted data are O(n) moves with no per-node allocation, which is what
/// lets the engine hand back million-tuple results cheaply. Per-tuple
/// Insert shifts the tail (O(n)); callers building large relations use
/// BulkLoad.
///
/// Thread safety: const access (Relation, Contains, TotalFacts, ...) is
/// safe from multiple threads; any mutation requires exclusive access.
class Database {
 public:
  /// Creates an empty database shaped after `program`'s predicates. Only the
  /// arity vector is captured; the program may intern more constants later.
  explicit Database(const Program& program);

  /// Inserts a fact; duplicate inserts are no-ops. Arity is CHECKed.
  /// O(relation size) per call — intended for small/interactive loads.
  void Insert(PredId predicate, Tuple tuple);

  /// Streaming-append path for large relations: sorts `tuples` (skipped
  /// when already sorted), drops duplicates, and loads them in one pass —
  /// a plain vector move when the relation is empty, a linear merge
  /// otherwise — instead of one O(n) insert per tuple. Million-tuple EDB
  /// generators and the engine's result materialization use this; the
  /// resulting database is identical to per-tuple Insert of the same
  /// facts.
  void BulkLoad(PredId predicate, std::vector<Tuple>&& tuples);

  /// Convenience for zero-arity predicates.
  void InsertProposition(PredId predicate) { Insert(predicate, Tuple{}); }

  /// True iff the fact is present (binary search).
  bool Contains(PredId predicate, const Tuple& tuple) const;

  /// The predicate's facts, sorted lexicographically, duplicate-free.
  const std::vector<Tuple>& Relation(PredId predicate) const;

  /// Number of relations (one per predicate of the shaping program).
  int32_t num_predicates() const {
    return static_cast<int32_t>(relations_.size());
  }

  /// Total fact count across all relations.
  int64_t TotalFacts() const;

  /// All constants mentioned by some fact, deduplicated ascending.
  std::vector<ConstId> ReferencedConstants() const;

  friend bool operator==(const Database&, const Database&) = default;

 private:
  std::vector<int32_t> arities_;
  std::vector<std::vector<Tuple>> relations_;
};

}  // namespace tiebreak

#endif  // TIEBREAK_LANG_DATABASE_H_
