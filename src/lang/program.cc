#include "lang/program.h"

#include <sstream>

namespace tiebreak {

PredId Program::DeclarePredicate(std::string_view name, int32_t arity) {
  const int32_t existing = predicate_names_.Lookup(name);
  if (existing >= 0) return existing;
  const PredId id = predicate_names_.Intern(name);
  predicates_.push_back(PredicateInfo{std::string(name), arity});
  head_index_valid_ = false;
  return id;
}

void Program::AddRule(Rule rule) {
  rules_.push_back(std::move(rule));
  head_index_valid_ = false;
}

namespace {

Status CheckAtomShape(const Program& program, const Atom& atom,
                      int32_t num_variables, const char* where,
                      int32_t rule_index) {
  std::ostringstream ctx;
  ctx << where << " of rule " << rule_index;
  if (atom.predicate < 0 || atom.predicate >= program.num_predicates()) {
    return Status::InvalidArgument("undeclared predicate in " + ctx.str());
  }
  const PredicateInfo& info = program.predicate(atom.predicate);
  if (static_cast<int32_t>(atom.args.size()) != info.arity) {
    std::ostringstream msg;
    msg << "predicate " << info.name << " declared with arity " << info.arity
        << " but used with " << atom.args.size() << " arguments in "
        << ctx.str();
    return Status::InvalidArgument(msg.str());
  }
  for (const Term& term : atom.args) {
    if (term.is_variable()) {
      if (term.index < 0 || term.index >= num_variables) {
        return Status::InvalidArgument("variable index out of range in " +
                                       ctx.str());
      }
    } else {
      if (term.index < 0 || term.index >= program.num_constants()) {
        return Status::InvalidArgument("constant index out of range in " +
                                       ctx.str());
      }
    }
  }
  return Status::Ok();
}

}  // namespace

Status Program::Validate() const {
  for (int32_t r = 0; r < num_rules(); ++r) {
    const Rule& rule = rules_[r];
    if (rule.num_variables < 0) {
      return Status::InvalidArgument("negative variable count");
    }
    if (static_cast<int32_t>(rule.variable_names.size()) !=
        rule.num_variables) {
      return Status::InvalidArgument("variable_names size mismatch in rule " +
                                     std::to_string(r));
    }
    Status s = CheckAtomShape(*this, rule.head, rule.num_variables, "head", r);
    if (!s.ok()) return s;
    for (const Literal& lit : rule.body) {
      s = CheckAtomShape(*this, lit.atom, rule.num_variables, "body", r);
      if (!s.ok()) return s;
    }
  }
  return Status::Ok();
}

void Program::EnsureHeadIndex() const {
  if (head_index_valid_) return;
  rules_by_head_.assign(predicates_.size(), {});
  for (int32_t r = 0; r < num_rules(); ++r) {
    const PredId head = rules_[r].head.predicate;
    TIEBREAK_CHECK_GE(head, 0);
    TIEBREAK_CHECK_LT(head, num_predicates());
    rules_by_head_[head].push_back(r);
  }
  head_index_valid_ = true;
}

bool Program::IsEdb(PredId p) const {
  EnsureHeadIndex();
  TIEBREAK_CHECK_GE(p, 0);
  TIEBREAK_CHECK_LT(p, num_predicates());
  return rules_by_head_[p].empty();
}

const std::vector<int32_t>& Program::RulesWithHead(PredId p) const {
  EnsureHeadIndex();
  TIEBREAK_CHECK_GE(p, 0);
  TIEBREAK_CHECK_LT(p, num_predicates());
  return rules_by_head_[p];
}

std::vector<PredId> Program::EdbPredicates() const {
  std::vector<PredId> result;
  for (PredId p = 0; p < num_predicates(); ++p) {
    if (IsEdb(p)) result.push_back(p);
  }
  return result;
}

std::vector<PredId> Program::IdbPredicates() const {
  std::vector<PredId> result;
  for (PredId p = 0; p < num_predicates(); ++p) {
    if (!IsEdb(p)) result.push_back(p);
  }
  return result;
}

}  // namespace tiebreak
