// Textual rendering of programs, rules, atoms, databases and ground atoms.
// Output parses back with lang/parser.h (round-trip tested), except that
// variable names may be renamed to canonical V0, V1, ... when a rule carries
// no surface names.
#ifndef TIEBREAK_LANG_PRINTER_H_
#define TIEBREAK_LANG_PRINTER_H_

#include <string>

#include "lang/ast.h"
#include "lang/database.h"
#include "lang/program.h"

namespace tiebreak {

/// Renders one atom using `rule` for variable names (pass nullptr to use
/// canonical V<i> names).
std::string AtomToString(const Program& program, const Atom& atom,
                         const Rule* rule);

/// Renders `P(c1, ..., cn)` (or bare `P` at arity 0).
std::string GroundAtomToString(const Program& program, PredId predicate,
                               const Tuple& tuple);

/// Renders `head :- l1, ..., ls.` (or `head.` for empty bodies).
std::string RuleToString(const Program& program, const Rule& rule);

/// Renders the whole program, one rule per line.
std::string ProgramToString(const Program& program);

/// Renders every fact of the database, one per line, predicates ascending.
std::string DatabaseToString(const Program& program, const Database& database);

}  // namespace tiebreak

#endif  // TIEBREAK_LANG_PRINTER_H_
