// The program graph G(Π) of Section 3: one node per predicate symbol, a
// positive (negative) edge from P to Q for every positive (negative)
// occurrence of P in the body of a rule whose head is Q. Edges carry
// provenance back to the (rule, body-literal) occurrence — the witness
// constructions of Theorems 2/3/5 need to locate the concrete rules behind a
// cycle.
#ifndef TIEBREAK_LANG_PROGRAM_GRAPH_H_
#define TIEBREAK_LANG_PROGRAM_GRAPH_H_

#include <cstdint>
#include <vector>

#include "graph/digraph.h"
#include "lang/program.h"

namespace tiebreak {

/// G(Π) plus occurrence provenance per edge.
struct ProgramGraph {
  /// Node ids coincide with PredIds of the source program.
  SignedDigraph graph;

  /// For edge id e: which rule and which body literal produced it.
  struct Occurrence {
    int32_t rule_index = 0;
    int32_t body_index = 0;
  };
  std::vector<Occurrence> provenance;
};

/// Builds G(Π). One edge per body-literal occurrence, so parallel edges (of
/// equal or different signs) are preserved. The returned graph is finalized.
ProgramGraph BuildProgramGraph(const Program& program);

}  // namespace tiebreak

#endif  // TIEBREAK_LANG_PROGRAM_GRAPH_H_
