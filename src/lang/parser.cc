#include "lang/parser.h"

#include <cctype>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

namespace tiebreak {

namespace {

struct Token {
  enum class Kind {
    kIdent,
    kLParen,
    kRParen,
    kComma,
    kPeriod,
    kImplies,  // ":-"
    kBang,     // "!"
    kEnd,
  };
  Kind kind = Kind::kEnd;
  std::string text;
  int line = 0;
};

std::string Describe(const Token& token) {
  switch (token.kind) {
    case Token::Kind::kIdent:
      return "identifier '" + token.text + "'";
    case Token::Kind::kLParen:
      return "'('";
    case Token::Kind::kRParen:
      return "')'";
    case Token::Kind::kComma:
      return "','";
    case Token::Kind::kPeriod:
      return "'.'";
    case Token::Kind::kImplies:
      return "':-'";
    case Token::Kind::kBang:
      return "'!'";
    case Token::Kind::kEnd:
      return "end of input";
  }
  return "?";
}

bool IsIdentStart(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

Status Tokenize(std::string_view text, std::vector<Token>* out) {
  int line = 1;
  size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    if (c == '%') {  // comment to end of line
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    if (c == '(') {
      out->push_back({Token::Kind::kLParen, "(", line});
      ++i;
      continue;
    }
    if (c == ')') {
      out->push_back({Token::Kind::kRParen, ")", line});
      ++i;
      continue;
    }
    if (c == ',') {
      out->push_back({Token::Kind::kComma, ",", line});
      ++i;
      continue;
    }
    if (c == '.') {
      out->push_back({Token::Kind::kPeriod, ".", line});
      ++i;
      continue;
    }
    if (c == '!') {
      out->push_back({Token::Kind::kBang, "!", line});
      ++i;
      continue;
    }
    if (c == ':') {
      if (i + 1 < text.size() && text[i + 1] == '-') {
        out->push_back({Token::Kind::kImplies, ":-", line});
        i += 2;
        continue;
      }
      return Status::InvalidArgument("line " + std::to_string(line) +
                                     ": expected ':-'");
    }
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < text.size() && IsIdentChar(text[j])) ++j;
      out->push_back(
          {Token::Kind::kIdent, std::string(text.substr(i, j - i)), line});
      i = j;
      continue;
    }
    return Status::InvalidArgument("line " + std::to_string(line) +
                                   ": unexpected character '" +
                                   std::string(1, c) + "'");
  }
  out->push_back({Token::Kind::kEnd, "", line});
  return Status::Ok();
}

bool IsVariableName(const std::string& name) {
  return !name.empty() &&
         (name[0] == '_' || std::isupper(static_cast<unsigned char>(name[0])));
}

// Shared recursive-descent machinery for programs and databases.
class Parser {
 public:
  Parser(std::vector<Token> tokens, Program* program)
      : tokens_(std::move(tokens)), program_(program) {}

  const Token& Peek() const { return tokens_[pos_]; }
  Token Take() { return tokens_[pos_++]; }

  Status Fail(const std::string& expected) const {
    return Status::InvalidArgument("line " + std::to_string(Peek().line) +
                                   ": expected " + expected + ", found " +
                                   Describe(Peek()));
  }

  Status Expect(Token::Kind kind, const std::string& what) {
    if (Peek().kind != kind) return Fail(what);
    Take();
    return Status::Ok();
  }

  // Parses `pred` or `pred(t1, ..., tn)`. Declares the predicate on first
  // use. When `ground_only`, variables are rejected.
  Status ParseAtom(Atom* atom,
                   std::unordered_map<std::string, int32_t>* variables,
                   std::vector<std::string>* variable_names, bool ground_only) {
    if (Peek().kind != Token::Kind::kIdent) return Fail("a predicate name");
    const Token name = Take();
    if (name.text == "not") {
      return Status::InvalidArgument("line " + std::to_string(name.line) +
                                     ": 'not' is a keyword, not a predicate");
    }
    std::vector<Term> args;
    if (Peek().kind == Token::Kind::kLParen) {
      Take();
      while (true) {
        if (Peek().kind != Token::Kind::kIdent) return Fail("a term");
        const Token term_token = Take();
        if (IsVariableName(term_token.text)) {
          if (ground_only) {
            return Status::InvalidArgument(
                "line " + std::to_string(term_token.line) +
                ": variable '" + term_token.text +
                "' not allowed in a ground fact");
          }
          auto [it, inserted] = variables->emplace(
              term_token.text, static_cast<int32_t>(variables->size()));
          if (inserted) variable_names->push_back(term_token.text);
          args.push_back(Term::Variable(it->second));
        } else {
          args.push_back(
              Term::Constant(program_->InternConstant(term_token.text)));
        }
        if (Peek().kind == Token::Kind::kComma) {
          Take();
          continue;
        }
        break;
      }
      Status s = Expect(Token::Kind::kRParen, "')'");
      if (!s.ok()) return s;
    }

    const int32_t arity = static_cast<int32_t>(args.size());
    const PredId existing = program_->LookupPredicate(name.text);
    PredId pred;
    if (existing >= 0) {
      pred = existing;
      if (program_->predicate(pred).arity != arity) {
        std::ostringstream msg;
        msg << "line " << name.line << ": predicate " << name.text
            << " used with arity " << arity << " but previously had arity "
            << program_->predicate(pred).arity;
        return Status::InvalidArgument(msg.str());
      }
    } else {
      pred = program_->DeclarePredicate(name.text, arity);
    }
    atom->predicate = pred;
    atom->args = std::move(args);
    return Status::Ok();
  }

  // Parses one `head [:- body].` statement into `rule`.
  Status ParseRule(Rule* rule) {
    std::unordered_map<std::string, int32_t> variables;
    rule->variable_names.clear();
    Status s = ParseAtom(&rule->head, &variables, &rule->variable_names,
                         /*ground_only=*/false);
    if (!s.ok()) return s;
    if (Peek().kind == Token::Kind::kImplies) {
      Take();
      while (true) {
        Literal literal;
        literal.positive = true;
        if (Peek().kind == Token::Kind::kBang) {
          Take();
          literal.positive = false;
        } else if (Peek().kind == Token::Kind::kIdent &&
                   Peek().text == "not") {
          Take();
          literal.positive = false;
        }
        s = ParseAtom(&literal.atom, &variables, &rule->variable_names,
                      /*ground_only=*/false);
        if (!s.ok()) return s;
        rule->body.push_back(std::move(literal));
        if (Peek().kind == Token::Kind::kComma) {
          Take();
          continue;
        }
        break;
      }
    }
    rule->num_variables = static_cast<int32_t>(variables.size());
    return Expect(Token::Kind::kPeriod, "'.' at end of rule");
  }

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  Program* program_;
};

}  // namespace

Result<Program> ParseProgram(std::string_view text) {
  std::vector<Token> tokens;
  Status s = Tokenize(text, &tokens);
  if (!s.ok()) return s;

  Program program;
  Parser parser(std::move(tokens), &program);
  while (parser.Peek().kind != Token::Kind::kEnd) {
    Rule rule;
    s = parser.ParseRule(&rule);
    if (!s.ok()) return s;
    program.AddRule(std::move(rule));
  }
  s = program.Validate();
  if (!s.ok()) return s;
  return program;
}

Result<Database> ParseDatabase(std::string_view text, Program* program) {
  std::vector<Token> tokens;
  Status s = Tokenize(text, &tokens);
  if (!s.ok()) return s;

  Parser parser(std::move(tokens), program);
  // Collect facts first: implicit predicate declarations must all land in
  // `program` before the Database snapshot of arities is taken.
  std::vector<std::pair<PredId, Tuple>> facts;
  while (parser.Peek().kind != Token::Kind::kEnd) {
    Atom atom;
    std::unordered_map<std::string, int32_t> no_vars;
    std::vector<std::string> no_names;
    s = parser.ParseAtom(&atom, &no_vars, &no_names, /*ground_only=*/true);
    if (!s.ok()) return s;
    s = parser.Expect(Token::Kind::kPeriod, "'.' at end of fact");
    if (!s.ok()) return s;
    Tuple tuple;
    tuple.reserve(atom.args.size());
    for (const Term& term : atom.args) tuple.push_back(term.index);
    facts.emplace_back(atom.predicate, std::move(tuple));
  }

  Database database(*program);
  for (auto& [pred, tuple] : facts) database.Insert(pred, std::move(tuple));
  return database;
}

Result<AtomPattern> ParseAtomPattern(std::string_view text,
                                     Program* program) {
  std::vector<Token> tokens;
  Status s = Tokenize(text, &tokens);
  if (!s.ok()) return s;

  // Reject unknown predicates before ParseAtom runs: ParseAtom declares
  // predicates on first use (the program-parsing behavior), and a pattern
  // must never mutate the caller's predicate table — especially not on an
  // error path.
  if (tokens.empty() || tokens.front().kind != Token::Kind::kIdent) {
    return Status::InvalidArgument("expected a predicate name in pattern: " +
                                   std::string(text));
  }
  if (program->LookupPredicate(tokens.front().text) < 0) {
    return Status::InvalidArgument("unknown predicate '" +
                                   tokens.front().text +
                                   "' in query pattern: " + std::string(text));
  }
  Parser parser(std::move(tokens), program);
  AtomPattern pattern;
  std::unordered_map<std::string, int32_t> variables;
  s = parser.ParseAtom(&pattern.atom, &variables, &pattern.variable_names,
                       /*ground_only=*/false);
  if (!s.ok()) return s;
  if (parser.Peek().kind == Token::Kind::kPeriod) parser.Take();
  if (parser.Peek().kind != Token::Kind::kEnd) {
    return parser.Fail("end of pattern");
  }
  return pattern;
}

}  // namespace tiebreak
