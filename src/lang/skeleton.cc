#include "lang/skeleton.h"

#include <algorithm>
#include <sstream>

namespace tiebreak {

Skeleton SkeletonOf(const Program& program) {
  Skeleton skeleton;
  skeleton.reserve(program.num_rules());
  for (const Rule& rule : program.rules()) {
    SkeletonRule sk;
    sk.head = program.predicate_name(rule.head.predicate);
    for (const Literal& literal : rule.body) {
      sk.body.push_back(SkeletonLiteral{
          program.predicate_name(literal.atom.predicate), literal.positive});
    }
    std::sort(sk.body.begin(), sk.body.end());
    skeleton.push_back(std::move(sk));
  }
  std::sort(skeleton.begin(), skeleton.end());
  return skeleton;
}

bool SameSkeleton(const Program& a, const Program& b) {
  return SkeletonOf(a) == SkeletonOf(b);
}

std::string SkeletonToString(const Skeleton& skeleton) {
  std::ostringstream out;
  for (const SkeletonRule& rule : skeleton) {
    out << rule.head;
    if (!rule.body.empty()) {
      out << " :- ";
      for (size_t i = 0; i < rule.body.size(); ++i) {
        if (i > 0) out << ", ";
        if (!rule.body[i].positive) out << "not ";
        out << rule.body[i].predicate;
      }
    }
    out << ".\n";
  }
  return out.str();
}

}  // namespace tiebreak
