// String interning. Every name in the system (predicate names, constant
// names) is interned once and handled as a dense int32 id afterwards. This
// is the antidote to pointer-linked term trees: all downstream structures
// (atoms, tuples, ground atoms) are flat vectors of ids with value
// semantics, so there is no manual memory management for terms anywhere.
#ifndef TIEBREAK_LANG_SYMBOLS_H_
#define TIEBREAK_LANG_SYMBOLS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/logging.h"

namespace tiebreak {

/// Dense id of a predicate symbol within one Program.
using PredId = int32_t;
/// Dense id of a constant symbol within one Program's constant table.
using ConstId = int32_t;
/// A ground argument tuple.
using Tuple = std::vector<ConstId>;

/// Bidirectional string <-> dense id map. Ids are assigned in insertion
/// order starting at 0 and never change.
class SymbolTable {
 public:
  /// Returns the id of `name`, interning it if new.
  int32_t Intern(std::string_view name) {
    auto it = index_.find(std::string(name));
    if (it != index_.end()) return it->second;
    const int32_t id = static_cast<int32_t>(names_.size());
    names_.emplace_back(name);
    index_.emplace(names_.back(), id);
    return id;
  }

  /// Returns the id of `name` or -1 when absent.
  int32_t Lookup(std::string_view name) const {
    auto it = index_.find(std::string(name));
    return it == index_.end() ? -1 : it->second;
  }

  const std::string& Name(int32_t id) const {
    TIEBREAK_CHECK_GE(id, 0);
    TIEBREAK_CHECK_LT(id, static_cast<int32_t>(names_.size()));
    return names_[id];
  }

  int32_t size() const { return static_cast<int32_t>(names_.size()); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, int32_t> index_;
};

}  // namespace tiebreak

#endif  // TIEBREAK_LANG_SYMBOLS_H_
