// Text format for Datalog¬ programs and databases.
//
// Program syntax (one statement per '.', '%' comments to end of line):
//
//   win(X) :- move(X, Y), not win(Y).
//   p :- not q.                 % zero-arity atoms need no parentheses
//   seed(a).                    % empty-body rule (a program-level fact)
//
// Identifier conventions (standard Datalog): an argument identifier starting
// with an uppercase letter or '_' is a variable; anything else (lowercase
// identifiers, numbers) is a constant. Predicate names may be any
// identifier except the keyword 'not'. '!' is accepted as a synonym for
// 'not'.
//
// Database syntax: a sequence of ground facts,
//
//   move(a, b).  move(b, a).  p.
//
// Facts may mention predicates unknown to the program; those are implicitly
// declared (with the observed arity) and are EDB by construction.
#ifndef TIEBREAK_LANG_PARSER_H_
#define TIEBREAK_LANG_PARSER_H_

#include <string_view>

#include "lang/database.h"
#include "lang/program.h"
#include "util/status.h"

namespace tiebreak {

/// Parses a program. Predicates are declared implicitly on first use, with
/// consistent-arity enforcement; the result has been Validate()d.
Result<Program> ParseProgram(std::string_view text);

/// Parses a database of ground facts against `program`, implicitly declaring
/// unknown predicates (which therefore become EDB). `program` is mutated
/// only by interning constants / declaring new predicates.
Result<Database> ParseDatabase(std::string_view text, Program* program);

/// A single parsed atom with variables, for queries (core/query.h).
struct AtomPattern {
  Atom atom;
  /// Names of the pattern's variables in first-occurrence order; Term
  /// variable indexes refer into this vector.
  std::vector<std::string> variable_names;
};

/// Parses one atom such as "win(X)", "t(a, Y)" or "p" (optionally ending in
/// '.'). Every malformed input — unknown predicate, arity mismatch, bad
/// token, trailing garbage — fails with INVALID_ARGUMENT; no CHECK is
/// reachable from pattern text. The predicate must already be declared in
/// `program`; an unknown predicate is rejected before parsing, so the
/// error path never declares it. Mutates `program` only by interning the
/// pattern's constants.
Result<AtomPattern> ParseAtomPattern(std::string_view text, Program* program);

}  // namespace tiebreak

#endif  // TIEBREAK_LANG_PARSER_H_
