// Program transformation utilities: predicate renaming and program merging.
// These are the user-facing tools for constructing alphabetic variants and
// composite programs (the witness builders in core/witness.h construct
// variants directly; these helpers serve downstream experimentation).
#ifndef TIEBREAK_LANG_TRANSFORM_H_
#define TIEBREAK_LANG_TRANSFORM_H_

#include <map>
#include <string>

#include "lang/program.h"
#include "util/status.h"

namespace tiebreak {

/// Returns a copy of `program` with predicates renamed per `renames`
/// (old name -> new name). Unmapped predicates keep their names. Fails with
/// INVALID_ARGUMENT when two predicates would collide after renaming.
Result<Program> RenamePredicates(const Program& program,
                                 const std::map<std::string, std::string>& renames);

/// Returns the union of two programs: predicates are merged by name (same
/// name requires same arity — INVALID_ARGUMENT otherwise), constants by
/// name, and the rule lists are concatenated (a's rules first).
Result<Program> MergePrograms(const Program& a, const Program& b);

}  // namespace tiebreak

#endif  // TIEBREAK_LANG_TRANSFORM_H_
