// Program transformation utilities: predicate renaming, program merging,
// and the magic-set / demand transformation behind demand-driven query
// serving (core/query_plan.h).
//
// The magic-set transform, in this codebase's shape. Given a query
// predicate q and a binding adornment ('b'ound / 'f'ree per argument), the
// transform derives one merged adornment per reachable IDB predicate (the
// greatest fixpoint under per-position AND across all body occurrences,
// seeded from the query pattern — one magic predicate per IDB predicate
// keeps the phase-2 program linear in the original) and emits two programs:
//
//  * `demand` — phase 1, evaluated bottom-up by the relational engine. For
//    each relevant IDB predicate p it declares `$magic_<p>` with one
//    argument per bound position of p's adornment, plus an EDB `$seed`
//    predicate holding the query's bound constants. Demand flows from a
//    rule's head to every IDB body occurrence — through positive AND
//    negated occurrences, because under the well-founded semantics an
//    atom's value depends on its full backward cone through both edge
//    signs — guarded by the rule's EDB literals (positive ones always;
//    negated ones only when their variables are bound, so the program
//    stays safe). Only EDB predicates and magic predicates appear in
//    `demand` bodies, so it is positive-in-IDB, hence always stratified.
//
//  * `guarded` — phase 2, fed to the reduced grounder. The original
//    predicates and constants keep their ids; each original rule of a
//    relevant predicate is copied with one extra positive body literal
//    `$magic_<p>(bound head args)` prepended. Magic predicates head no
//    rule here, so they are EDB: loading phase 1's magic relations as
//    facts makes the reduced grounder resolve the guards during binding
//    enumeration — rule instances whose head was never demanded are never
//    created. Rules of unreachable predicates are dropped entirely.
//
// Soundness: the demanded cone is support-closed — every rule instance
// whose head is demanded has all its body atoms demanded (the magic rules
// re-derive exactly that closure), so the well-founded model of the
// guarded grounding agrees with the full model on every demanded atom
// (true, false, AND undefined), including unstratified programs like
// win/move. See docs/architecture.md "Demand-driven query serving".
#ifndef TIEBREAK_LANG_TRANSFORM_H_
#define TIEBREAK_LANG_TRANSFORM_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "lang/program.h"
#include "util/status.h"

namespace tiebreak {

/// Returns a copy of `program` with predicates renamed per `renames`
/// (old name -> new name). Unmapped predicates keep their names. Fails with
/// INVALID_ARGUMENT when two predicates would collide after renaming.
Result<Program> RenamePredicates(const Program& program,
                                 const std::map<std::string, std::string>& renames);

/// Returns the union of two programs: predicates are merged by name (same
/// name requires same arity — INVALID_ARGUMENT otherwise), constants by
/// name, and the rule lists are concatenated (a's rules first).
Result<Program> MergePrograms(const Program& a, const Program& b);

/// Output of MagicSetTransform; see the file comment for the two-phase
/// execution model. Predicate ids 0..P-1 of both programs are the original
/// program's predicates (same names, same order); magic predicates follow
/// at identical ids in both, and `seed` exists only in `demand` (declared
/// last).
struct DemandTransform {
  /// Phase 1: the stratified demand program (magic rules + seed rule).
  Program demand;
  /// Phase 2: guarded copies of the relevant original rules.
  Program guarded;
  /// The EDB seed predicate of `demand`; its single relation holds the
  /// query's constants at the bound positions (0-ary flag when none).
  PredId seed = -1;
  /// Per original predicate: the merged adornment ('b'/'f' per argument)
  /// the fixpoint settled on. Empty string for predicates the query never
  /// reaches (note zero-arity relevant predicates also have an empty
  /// adornment — consult `magic` for relevance).
  std::vector<std::string> adornments;
  /// Per original predicate: its magic predicate's id (same in both
  /// programs), or -1 for EDB / unreachable predicates.
  std::vector<PredId> magic;
  /// Per original predicate: 1 iff `demand` rule bodies read this EDB
  /// relation — the spans phase 1 actually needs; every other predicate
  /// can be handed an empty span.
  std::vector<char> edb_used;
  /// Argument positions of the query predicate that remained bound in the
  /// final adornment, ascending — the positions whose pattern constants
  /// form the seed fact.
  std::vector<int32_t> seed_positions;
};

/// Builds the magic-set / demand transformation of `program` for queries
/// against `query_pred` under `adornment` (one 'b' or 'f' per argument;
/// bound positions are the ones the query fixes to a constant). The
/// program must Validate() and `query_pred` must be IDB — INVALID_ARGUMENT
/// otherwise. Always succeeds on such inputs; both returned programs
/// Validate(), `demand` is stratified and safe by construction (callers
/// re-check defensively and fall back to full grounding with a reason —
/// see QueryPlanner).
Result<DemandTransform> MagicSetTransform(const Program& program,
                                          PredId query_pred,
                                          std::string_view adornment);

}  // namespace tiebreak

#endif  // TIEBREAK_LANG_TRANSFORM_H_
