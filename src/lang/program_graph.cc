#include "lang/program_graph.h"

namespace tiebreak {

ProgramGraph BuildProgramGraph(const Program& program) {
  ProgramGraph pg;
  pg.graph = SignedDigraph(program.num_predicates());
  for (int32_t r = 0; r < program.num_rules(); ++r) {
    const Rule& rule = program.rule(r);
    for (int32_t b = 0; b < static_cast<int32_t>(rule.body.size()); ++b) {
      const Literal& literal = rule.body[b];
      const int32_t edge =
          pg.graph.AddEdge(literal.atom.predicate, rule.head.predicate,
                           /*negative=*/!literal.positive);
      TIEBREAK_CHECK_EQ(edge, static_cast<int32_t>(pg.provenance.size()));
      pg.provenance.push_back(ProgramGraph::Occurrence{r, b});
    }
  }
  pg.graph.Finalize();
  return pg;
}

}  // namespace tiebreak
