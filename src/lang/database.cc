#include "lang/database.h"

#include <algorithm>
#include <cstring>

namespace tiebreak {

namespace {

// Lexicographic three-way compare of two rows of `arity` ids.
int CompareRows(const ConstId* a, const ConstId* b, int32_t arity) {
  for (int32_t c = 0; c < arity; ++c) {
    if (a[c] != b[c]) return a[c] < b[c] ? -1 : 1;
  }
  return 0;
}

bool RowsSorted(const std::vector<ConstId>& values, int32_t arity) {
  const int64_t count = static_cast<int64_t>(values.size()) / arity;
  for (int64_t r = 1; r < count; ++r) {
    if (CompareRows(&values[(r - 1) * arity], &values[r * arity], arity) > 0) {
      return false;
    }
  }
  return true;
}

// Sorts `values` (count × arity, row-major) lexicographically by row.
// ConstIds are nonnegative 31-bit values, so rows of arity ≤ 2 pack
// injectively and order-preservingly into one uint64 — those sort as flat
// machine words; wider rows sort a row-id permutation and gather once.
void SortRows(std::vector<ConstId>* values, int32_t arity) {
  if (RowsSorted(*values, arity)) return;
  const int64_t count = static_cast<int64_t>(values->size()) / arity;
  if (arity == 1) {
    std::sort(values->begin(), values->end());
    return;
  }
  if (arity == 2) {
    std::vector<uint64_t> keys;
    keys.reserve(count);
    for (int64_t r = 0; r < count; ++r) {
      keys.push_back(static_cast<uint64_t>((*values)[2 * r]) << 32 |
                     static_cast<uint32_t>((*values)[2 * r + 1]));
    }
    std::sort(keys.begin(), keys.end());
    for (int64_t r = 0; r < count; ++r) {
      (*values)[2 * r] = static_cast<ConstId>(keys[r] >> 32);
      (*values)[2 * r + 1] = static_cast<ConstId>(keys[r] & 0xFFFFFFFF);
    }
    return;
  }
  std::vector<int64_t> order(count);
  for (int64_t r = 0; r < count; ++r) order[r] = r;
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    return CompareRows(&(*values)[a * arity], &(*values)[b * arity], arity) <
           0;
  });
  std::vector<ConstId> sorted(values->size());
  for (int64_t r = 0; r < count; ++r) {
    std::memcpy(&sorted[r * arity], &(*values)[order[r] * arity],
                sizeof(ConstId) * arity);
  }
  *values = std::move(sorted);
}

// Drops adjacent duplicate rows of a sorted row-major buffer in place.
void DedupeRows(std::vector<ConstId>* values, int32_t arity) {
  const int64_t count = static_cast<int64_t>(values->size()) / arity;
  if (count <= 1) return;
  int64_t out = 1;
  for (int64_t r = 1; r < count; ++r) {
    if (CompareRows(&(*values)[(out - 1) * arity], &(*values)[r * arity],
                    arity) == 0) {
      continue;
    }
    if (out != r) {
      std::memcpy(&(*values)[out * arity], &(*values)[r * arity],
                  sizeof(ConstId) * arity);
    }
    ++out;
  }
  values->resize(out * arity);
}

}  // namespace

Database::Database(const Program& program) {
  arities_.reserve(program.num_predicates());
  for (PredId p = 0; p < program.num_predicates(); ++p) {
    arities_.push_back(program.predicate(p).arity);
  }
  num_rows_.assign(program.num_predicates(), 0);
  rows_.resize(program.num_predicates());
}

Result<Database> Database::FromArenas(std::vector<int32_t> arities,
                                      std::vector<int64_t> num_rows,
                                      std::vector<std::vector<ConstId>> rows,
                                      int32_t num_constants) {
  const size_t predicates = arities.size();
  if (num_rows.size() != predicates || rows.size() != predicates) {
    return Status::DataLoss("database arenas disagree on predicate count");
  }
  if (predicates > static_cast<size_t>(INT32_MAX)) {
    return Status::DataLoss("database predicate count overflows int32");
  }
  for (size_t p = 0; p < predicates; ++p) {
    const std::string where = "relation " + std::to_string(p);
    const int32_t arity = arities[p];
    const int64_t count = num_rows[p];
    if (arity < 0) return Status::DataLoss(where + ": negative arity");
    if (count < 0) return Status::DataLoss(where + ": negative row count");
    if (arity == 0) {
      if (!rows[p].empty()) {
        return Status::DataLoss(where + ": zero-arity relation carries data");
      }
      if (count > 1) {
        return Status::DataLoss(where + ": zero-arity relation with " +
                                std::to_string(count) + " rows");
      }
      continue;
    }
    // Overflow-safe count * arity == rows[p].size().
    const int64_t ids = static_cast<int64_t>(rows[p].size());
    if (ids % arity != 0 || ids / arity != count) {
      return Status::DataLoss(where + ": arena holds " + std::to_string(ids) +
                              " ids, expected " + std::to_string(count) +
                              " rows of arity " + std::to_string(arity));
    }
    const ConstId* data = rows[p].data();
    for (int64_t i = 0; i < ids; ++i) {
      if (data[i] < 0 || data[i] >= num_constants) {
        return Status::DataLoss(where + ": constant id " +
                                std::to_string(data[i]) +
                                " outside [0, " +
                                std::to_string(num_constants) + ")");
      }
    }
    for (int64_t r = 1; r < count; ++r) {
      if (CompareRows(data + (r - 1) * arity, data + r * arity, arity) >= 0) {
        return Status::DataLoss(where + ": rows not sorted and unique at row " +
                                std::to_string(r));
      }
    }
  }
  Database database;
  database.arities_ = std::move(arities);
  database.num_rows_ = std::move(num_rows);
  database.rows_ = std::move(rows);
  return database;
}

int64_t Database::LowerBound(PredId predicate, const ConstId* row) const {
  const int32_t arity = arities_[predicate];
  const ConstId* data = rows_[predicate].data();
  int64_t lo = 0;
  int64_t hi = num_rows_[predicate];
  while (lo < hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    if (CompareRows(data + mid * arity, row, arity) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void Database::Insert(PredId predicate, Tuple tuple) {
  CheckPredicate(predicate);
  const int32_t arity = arities_[predicate];
  TIEBREAK_CHECK_EQ(static_cast<int32_t>(tuple.size()), arity)
      << "arity mismatch inserting into relation " << predicate;
  if (arity == 0) {
    num_rows_[predicate] = 1;
    return;
  }
  const int64_t at = LowerBound(predicate, tuple.data());
  std::vector<ConstId>& rows = rows_[predicate];
  if (at < num_rows_[predicate] &&
      CompareRows(rows.data() + at * arity, tuple.data(), arity) == 0) {
    return;
  }
  rows.insert(rows.begin() + at * arity, tuple.begin(), tuple.end());
  ++num_rows_[predicate];
}

void Database::BulkLoadFlat(PredId predicate, std::vector<ConstId>&& values) {
  CheckPredicate(predicate);
  const int32_t arity = arities_[predicate];
  TIEBREAK_CHECK_GT(arity, 0)
      << "BulkLoadFlat on zero-arity relation " << predicate
      << "; use InsertProposition";
  TIEBREAK_CHECK_EQ(static_cast<int64_t>(values.size()) % arity, 0)
      << "flat buffer is not a whole number of arity-" << arity << " rows";
  SortRows(&values, arity);
  DedupeRows(&values, arity);
  std::vector<ConstId>& rows = rows_[predicate];
  if (rows.empty()) {
    // The common case (fresh relation) is a plain move: no per-row cost at
    // all.
    rows = std::move(values);
  } else {
    // Linear merge of two sorted row runs, dropping cross-run duplicates.
    std::vector<ConstId> merged;
    merged.reserve(rows.size() + values.size());
    const ConstId* a = rows.data();
    const ConstId* a_end = a + rows.size();
    const ConstId* b = values.data();
    const ConstId* b_end = b + values.size();
    while (a != a_end && b != b_end) {
      const int cmp = CompareRows(a, b, arity);
      if (cmp < 0) {
        merged.insert(merged.end(), a, a + arity);
        a += arity;
      } else if (cmp > 0) {
        merged.insert(merged.end(), b, b + arity);
        b += arity;
      } else {
        merged.insert(merged.end(), a, a + arity);
        a += arity;
        b += arity;
      }
    }
    merged.insert(merged.end(), a, a_end);
    merged.insert(merged.end(), b, b_end);
    rows = std::move(merged);
  }
  num_rows_[predicate] = static_cast<int64_t>(rows.size()) / arity;
  values.clear();
}

void Database::BulkLoad(PredId predicate, std::vector<Tuple>&& tuples) {
  CheckPredicate(predicate);
  const int32_t arity = arities_[predicate];
  if (arity == 0) {
    for (const Tuple& tuple : tuples) {
      TIEBREAK_CHECK(tuple.empty())
          << "arity mismatch bulk-loading relation " << predicate;
      num_rows_[predicate] = 1;
    }
    tuples.clear();
    return;
  }
  std::vector<ConstId> flat;
  flat.reserve(tuples.size() * static_cast<size_t>(arity));
  for (const Tuple& tuple : tuples) {
    TIEBREAK_CHECK_EQ(static_cast<int32_t>(tuple.size()), arity)
        << "arity mismatch bulk-loading relation " << predicate;
    flat.insert(flat.end(), tuple.begin(), tuple.end());
  }
  tuples.clear();
  BulkLoadFlat(predicate, std::move(flat));
}

bool Database::Contains(PredId predicate, const Tuple& tuple) const {
  CheckPredicate(predicate);
  TIEBREAK_CHECK_EQ(static_cast<int32_t>(tuple.size()), arities_[predicate]);
  return ContainsRow(predicate, tuple.data());
}

bool Database::ContainsRow(PredId predicate, const ConstId* row) const {
  CheckPredicate(predicate);
  const int32_t arity = arities_[predicate];
  if (arity == 0) return num_rows_[predicate] > 0;
  const int64_t at = LowerBound(predicate, row);
  return at < num_rows_[predicate] &&
         CompareRows(rows_[predicate].data() + at * arity, row, arity) == 0;
}

Tuple Database::FactTuple(PredId predicate, int64_t row) const {
  const ConstId* data = FactRow(predicate, row);
  return Tuple(data, data + arities_[predicate]);
}

std::vector<Tuple> Database::Tuples(PredId predicate) const {
  CheckPredicate(predicate);
  std::vector<Tuple> tuples;
  tuples.reserve(static_cast<size_t>(num_rows_[predicate]));
  for (int64_t r = 0; r < num_rows_[predicate]; ++r) {
    tuples.push_back(FactTuple(predicate, r));
  }
  return tuples;
}

int64_t Database::TotalFacts() const {
  int64_t total = 0;
  for (int64_t rows : num_rows_) total += rows;
  return total;
}

std::vector<ConstId> Database::ReferencedConstants() const {
  std::vector<ConstId> constants;
  for (const std::vector<ConstId>& rows : rows_) {
    constants.insert(constants.end(), rows.begin(), rows.end());
  }
  std::sort(constants.begin(), constants.end());
  constants.erase(std::unique(constants.begin(), constants.end()),
                  constants.end());
  return constants;
}

}  // namespace tiebreak
