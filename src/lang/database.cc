#include "lang/database.h"

#include <algorithm>

namespace tiebreak {

Database::Database(const Program& program) {
  arities_.reserve(program.num_predicates());
  for (PredId p = 0; p < program.num_predicates(); ++p) {
    arities_.push_back(program.predicate(p).arity);
  }
  relations_.resize(program.num_predicates());
}

void Database::Insert(PredId predicate, Tuple tuple) {
  TIEBREAK_CHECK_GE(predicate, 0);
  TIEBREAK_CHECK_LT(predicate, num_predicates());
  TIEBREAK_CHECK_EQ(static_cast<int32_t>(tuple.size()), arities_[predicate])
      << "arity mismatch inserting into relation " << predicate;
  relations_[predicate].insert(std::move(tuple));
}

bool Database::Contains(PredId predicate, const Tuple& tuple) const {
  TIEBREAK_CHECK_GE(predicate, 0);
  TIEBREAK_CHECK_LT(predicate, num_predicates());
  return relations_[predicate].contains(tuple);
}

const std::set<Tuple>& Database::Relation(PredId predicate) const {
  TIEBREAK_CHECK_GE(predicate, 0);
  TIEBREAK_CHECK_LT(predicate, num_predicates());
  return relations_[predicate];
}

int64_t Database::TotalFacts() const {
  int64_t total = 0;
  for (const auto& rel : relations_) total += static_cast<int64_t>(rel.size());
  return total;
}

std::vector<ConstId> Database::ReferencedConstants() const {
  std::vector<ConstId> constants;
  for (const auto& rel : relations_) {
    for (const Tuple& tuple : rel) {
      constants.insert(constants.end(), tuple.begin(), tuple.end());
    }
  }
  std::sort(constants.begin(), constants.end());
  constants.erase(std::unique(constants.begin(), constants.end()),
                  constants.end());
  return constants;
}

}  // namespace tiebreak
