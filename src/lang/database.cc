#include "lang/database.h"

#include <algorithm>

namespace tiebreak {

Database::Database(const Program& program) {
  arities_.reserve(program.num_predicates());
  for (PredId p = 0; p < program.num_predicates(); ++p) {
    arities_.push_back(program.predicate(p).arity);
  }
  relations_.resize(program.num_predicates());
}

void Database::Insert(PredId predicate, Tuple tuple) {
  TIEBREAK_CHECK_GE(predicate, 0);
  TIEBREAK_CHECK_LT(predicate, num_predicates());
  TIEBREAK_CHECK_EQ(static_cast<int32_t>(tuple.size()), arities_[predicate])
      << "arity mismatch inserting into relation " << predicate;
  std::vector<Tuple>& relation = relations_[predicate];
  const auto at = std::lower_bound(relation.begin(), relation.end(), tuple);
  if (at != relation.end() && *at == tuple) return;
  relation.insert(at, std::move(tuple));
}

void Database::BulkLoad(PredId predicate, std::vector<Tuple>&& tuples) {
  TIEBREAK_CHECK_GE(predicate, 0);
  TIEBREAK_CHECK_LT(predicate, num_predicates());
  for (const Tuple& tuple : tuples) {
    TIEBREAK_CHECK_EQ(static_cast<int32_t>(tuple.size()), arities_[predicate])
        << "arity mismatch bulk-loading relation " << predicate;
  }
  // Callers that pre-sort (e.g. the engine's result materialization, which
  // sorts flat keys before building any Tuple) skip the heavy part.
  if (!std::is_sorted(tuples.begin(), tuples.end())) {
    std::sort(tuples.begin(), tuples.end());
  }
  tuples.erase(std::unique(tuples.begin(), tuples.end()), tuples.end());
  std::vector<Tuple>& relation = relations_[predicate];
  if (relation.empty()) {
    // The common case (fresh relation) is a plain move: no per-tuple cost
    // at all.
    relation = std::move(tuples);
  } else {
    // Linear merge of two sorted runs, then drop cross-run duplicates.
    const size_t old_size = relation.size();
    relation.insert(relation.end(), std::make_move_iterator(tuples.begin()),
                    std::make_move_iterator(tuples.end()));
    std::inplace_merge(relation.begin(), relation.begin() + old_size,
                       relation.end());
    relation.erase(std::unique(relation.begin(), relation.end()),
                   relation.end());
  }
  tuples.clear();
}

bool Database::Contains(PredId predicate, const Tuple& tuple) const {
  TIEBREAK_CHECK_GE(predicate, 0);
  TIEBREAK_CHECK_LT(predicate, num_predicates());
  const std::vector<Tuple>& relation = relations_[predicate];
  return std::binary_search(relation.begin(), relation.end(), tuple);
}

const std::vector<Tuple>& Database::Relation(PredId predicate) const {
  TIEBREAK_CHECK_GE(predicate, 0);
  TIEBREAK_CHECK_LT(predicate, num_predicates());
  return relations_[predicate];
}

int64_t Database::TotalFacts() const {
  int64_t total = 0;
  for (const auto& rel : relations_) total += static_cast<int64_t>(rel.size());
  return total;
}

std::vector<ConstId> Database::ReferencedConstants() const {
  std::vector<ConstId> constants;
  for (const auto& rel : relations_) {
    for (const Tuple& tuple : rel) {
      constants.insert(constants.end(), tuple.begin(), tuple.end());
    }
  }
  std::sort(constants.begin(), constants.end());
  constants.erase(std::unique(constants.begin(), constants.end()),
                  constants.end());
  return constants;
}

}  // namespace tiebreak
