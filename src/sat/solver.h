// A CDCL SAT solver (two-watched literals, 1UIP clause learning, VSIDS-style
// activities with an indexed heap, geometric restarts, phase saving).
//
// Why a SAT solver in a Datalog paper reproduction: fixpoints of Π on Δ are
// exactly the models of the Clark completion of the ground instance
// (core/completion.h). The paper's negative results — "this alphabetic
// variant has NO fixpoint" (Theorems 2, 3, 6) — are validated empirically by
// UNSAT answers, and stable models are enumerated by filtering completion
// models through the stability check with blocking clauses. Deciding
// fixpoint existence is NP-complete [KP], so a real search engine is the
// appropriate substrate.
//
// The solver supports incremental use: after Solve() returns kSat, callers
// may AddClause() (e.g. a blocking clause) and Solve() again.
#ifndef TIEBREAK_SAT_SOLVER_H_
#define TIEBREAK_SAT_SOLVER_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace tiebreak {

class ExecutionContext;

/// Literal encoding: variable v >= 0; positive literal 2v, negative 2v+1.
using SatLit = int32_t;

inline SatLit PosLit(int32_t var) { return 2 * var; }
inline SatLit NegLit(int32_t var) { return 2 * var + 1; }
inline int32_t LitVar(SatLit lit) { return lit >> 1; }
inline bool LitIsNeg(SatLit lit) { return (lit & 1) != 0; }
inline SatLit Negate(SatLit lit) { return lit ^ 1; }
/// Builds a literal for `var` with the given polarity (true = positive).
inline SatLit MakeLit(int32_t var, bool positive) {
  return positive ? PosLit(var) : NegLit(var);
}

/// Outcome of a Solve() call.
enum class SatResult {
  kSat,
  kUnsat,
  kUnknown,  ///< conflict budget exhausted (SetConflictBudget) or the
             ///< execution context tripped (SetExecutionContext)
};

/// Conflict-driven clause-learning solver.
class SatSolver {
 public:
  SatSolver() = default;

  /// Allocates a fresh variable and returns its index.
  int32_t NewVar();

  int32_t num_vars() const { return static_cast<int32_t>(assign_.size()); }

  /// Adds a clause (disjunction of literals). May be called before or
  /// between Solve() calls. Adding an empty (or all-false-at-level-0) clause
  /// makes the instance permanently UNSAT.
  void AddClause(std::vector<SatLit> lits);

  /// Convenience single/binary/ternary clause helpers.
  void AddUnit(SatLit a) { AddClause({a}); }
  void AddBinary(SatLit a, SatLit b) { AddClause({a, b}); }
  void AddTernary(SatLit a, SatLit b, SatLit c) { AddClause({a, b, c}); }

  /// Caps the number of conflicts in subsequent Solve() calls; 0 = no cap.
  void SetConflictBudget(int64_t budget) { conflict_budget_ = budget; }

  /// Governs subsequent Solve() calls by `context` (not owned; null =
  /// ungoverned): conflicts charge the context's step budget at restart
  /// boundaries, deadlines are checked there too (an unconditional clock
  /// read per restart — restarts are geometric, so rare), and every
  /// conflict polls the cooperative stop flag (one relaxed load). On a
  /// trip, Solve backtracks to level 0 — the solver stays valid and
  /// incremental — and returns kUnknown; read the context for the cause.
  void SetExecutionContext(ExecutionContext* context) { context_ = context; }

  /// Runs the CDCL search.
  SatResult Solve();

  /// Value of `var` in the last kSat model.
  bool ModelValue(int32_t var) const {
    TIEBREAK_CHECK(last_result_ == SatResult::kSat);
    TIEBREAK_CHECK_GE(var, 0);
    TIEBREAK_CHECK_LT(var, num_vars());
    return model_[var] > 0;
  }

  /// Adds a clause excluding the last model restricted to `vars` (for model
  /// enumeration over a projection).
  void BlockModel(const std::vector<int32_t>& vars);

  int64_t num_conflicts() const { return stats_conflicts_; }
  int64_t num_decisions() const { return stats_decisions_; }
  int64_t num_propagations() const { return stats_propagations_; }

 private:
  enum : int8_t { kUndef = 0, kTrue = 1, kFalse = -1 };

  struct Clause {
    std::vector<SatLit> lits;
    bool learnt = false;
  };

  int8_t ValueOfLit(SatLit lit) const {
    const int8_t v = assign_[LitVar(lit)];
    if (v == kUndef) return kUndef;
    return LitIsNeg(lit) ? static_cast<int8_t>(-v) : v;
  }

  void Enqueue(SatLit lit, int32_t reason);
  /// Returns the index of a conflicting clause or -1.
  int32_t Propagate();
  /// 1UIP conflict analysis; fills `learnt` and returns the backtrack level.
  int32_t Analyze(int32_t conflict_clause, std::vector<SatLit>* learnt);
  void Backtrack(int32_t level);
  void BumpVar(int32_t var);
  void DecayActivities();
  int32_t PickBranchVar();
  void AttachClause(int32_t clause_index);

  // Indexed max-heap over variable activities.
  void HeapInsert(int32_t var);
  void HeapPercolateUp(int32_t pos);
  void HeapPercolateDown(int32_t pos);
  int32_t HeapPopMax();
  bool HeapContains(int32_t var) const {
    return heap_position_[var] >= 0;
  }

  std::vector<Clause> clauses_;
  std::vector<std::vector<int32_t>> watches_;  // literal -> clause indices
  std::vector<int8_t> assign_;                 // variable -> kUndef/kTrue/kFalse
  std::vector<int8_t> phase_;                  // saved phases
  std::vector<int32_t> level_;                 // variable -> decision level
  std::vector<int32_t> reason_;                // variable -> clause index / -1
  std::vector<SatLit> trail_;
  std::vector<int32_t> trail_limits_;          // decision-level boundaries
  size_t propagate_head_ = 0;

  std::vector<double> activity_;
  std::vector<int32_t> heap_;           // heap of variables
  std::vector<int32_t> heap_position_;  // variable -> heap index or -1
  double activity_increment_ = 1.0;
  std::vector<int8_t> seen_;            // conflict-analysis scratch flags

  std::vector<int8_t> model_;
  bool unsat_ = false;
  SatResult last_result_ = SatResult::kUnknown;
  int64_t conflict_budget_ = 0;
  ExecutionContext* context_ = nullptr;

  int64_t stats_conflicts_ = 0;
  int64_t stats_decisions_ = 0;
  int64_t stats_propagations_ = 0;
};

}  // namespace tiebreak

#endif  // TIEBREAK_SAT_SOLVER_H_
