// A modern CDCL SAT solver: flat clause arena with 32-bit references,
// two-watched literals with blocking literals, inline binary-clause watch
// lists with tagged binary reasons, 1UIP learning with recursive clause
// minimization, LBD-scored learnt-clause database reduction with compacting
// garbage collection, VSIDS-style activities on an indexed heap, phase
// saving, Luby (or geometric) restarts, and bounded level-0 preprocessing
// (occurrence-list subsumption + self-subsuming resolution).
//
// Why a SAT solver in a Datalog paper reproduction: fixpoints of Π on Δ are
// exactly the models of the Clark completion of the ground instance
// (core/completion.h). The paper's negative results — "this alphabetic
// variant has NO fixpoint" (Theorems 2, 3, 6) — are validated empirically by
// UNSAT answers, and stable models are enumerated by filtering completion
// models through the stability check with blocking clauses. Deciding
// fixpoint existence is NP-complete [KP], so a real search engine is the
// appropriate substrate.
//
// All transformations the solver applies (level-0 simplification,
// subsumption, self-subsuming resolution, learnt clauses) are
// equivalence-preserving over the original variables, so model ENUMERATION
// (Solve/BlockModel loops) sees exactly the same model set regardless of
// configuration — the randomized agreement suite in tests/sat_test.cc pins
// this down.
//
// The solver supports incremental use: after Solve() returns kSat, callers
// may AddClause() (e.g. a blocking clause) and Solve() again.
#ifndef TIEBREAK_SAT_SOLVER_H_
#define TIEBREAK_SAT_SOLVER_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"
#include "util/status.h"

namespace tiebreak {

class ExecutionContext;

/// Literal encoding: variable v >= 0; positive literal 2v, negative 2v+1.
using SatLit = int32_t;

inline SatLit PosLit(int32_t var) { return 2 * var; }
inline SatLit NegLit(int32_t var) { return 2 * var + 1; }
inline int32_t LitVar(SatLit lit) { return lit >> 1; }
inline bool LitIsNeg(SatLit lit) { return (lit & 1) != 0; }
inline SatLit Negate(SatLit lit) { return lit ^ 1; }
/// Builds a literal for `var` with the given polarity (true = positive).
inline SatLit MakeLit(int32_t var, bool positive) {
  return positive ? PosLit(var) : NegLit(var);
}

/// Outcome of a Solve() call.
enum class SatResult {
  kSat,
  kUnsat,
  kUnknown,  ///< conflict budget exhausted (SetConflictBudget) or the
             ///< execution context tripped (SetExecutionContext)
};

/// Word offset of a clause inside the arena. 32 bits keep a watcher entry at
/// 8 bytes; offsets are checked to stay below 2^31 so the high bit is free
/// for the binary-reason tag.
using ClauseRef = uint32_t;

/// Conflict-driven clause-learning solver.
class SatSolver {
 public:
  /// Search-strategy switches. Every configuration decides the same
  /// SAT/UNSAT answers and enumerates the same model sets; the switches only
  /// trade search effort. Set before the first Solve().
  struct Config {
    bool luby_restarts = true;    ///< false = geometric (x1.5 from 100)
    bool minimize_learnt = true;  ///< recursive learnt-clause minimization
    bool reduce_db = true;        ///< periodic learnt-clause deletion
    bool preprocess = true;       ///< bounded subsumption at first Solve()
  };

  SatSolver() = default;

  void SetConfig(const Config& config) { config_ = config; }

  /// Allocates a fresh variable and returns its index.
  int32_t NewVar();

  /// Capacity hint: pre-sizes the per-variable bookkeeping (watch lists,
  /// trail, heap) for `num_vars` variables. Purely an optimization for bulk
  /// encoders that know the variable count up front.
  void Reserve(int32_t num_vars);

  int32_t num_vars() const { return static_cast<int32_t>(assign_.size()); }

  /// Adds a clause (disjunction of literals). May be called before or
  /// between Solve() calls. Adding an empty (or all-false-at-level-0) clause
  /// makes the instance permanently UNSAT. Returns InvalidArgument — with
  /// the solver unchanged — if any literal names a variable outside
  /// [0, num_vars()); Ok otherwise.
  Status AddClause(std::vector<SatLit> lits);

  /// Allocation-free variant over a caller-owned span (the literals are
  /// copied into an internal scratch buffer, so bulk encoders can reuse one
  /// clause buffer across millions of additions). Same contract as
  /// AddClause.
  Status AddLits(const SatLit* lits, size_t n);

  /// Convenience single/binary/ternary clause helpers.
  Status AddUnit(SatLit a) {
    const SatLit lits[1] = {a};
    return AddLits(lits, 1);
  }
  Status AddBinary(SatLit a, SatLit b) {
    const SatLit lits[2] = {a, b};
    return AddLits(lits, 2);
  }
  Status AddTernary(SatLit a, SatLit b, SatLit c) {
    const SatLit lits[3] = {a, b, c};
    return AddLits(lits, 3);
  }

  /// Caps the number of conflicts in subsequent Solve() calls; 0 = no cap.
  void SetConflictBudget(int64_t budget) { conflict_budget_ = budget; }

  /// Governs subsequent Solve() calls by `context` (not owned; null =
  /// ungoverned): conflicts charge the context's step budget at restart
  /// boundaries, deadlines are checked there too (an unconditional clock
  /// read per restart), and every conflict polls the cooperative stop flag
  /// (one relaxed load). On a trip, Solve backtracks to level 0 — the
  /// solver stays valid and incremental — and returns kUnknown; read the
  /// context for the cause.
  void SetExecutionContext(ExecutionContext* context) { context_ = context; }

  /// Runs the CDCL search.
  SatResult Solve();

  /// Value of `var` in the last kSat model.
  bool ModelValue(int32_t var) const {
    TIEBREAK_CHECK(last_result_ == SatResult::kSat);
    TIEBREAK_CHECK_GE(var, 0);
    TIEBREAK_CHECK_LT(var, num_vars());
    return model_[var] > 0;
  }

  /// Adds a clause excluding the last model restricted to `vars` (for model
  /// enumeration over a projection). Returns FailedPrecondition if the last
  /// Solve() did not return kSat (there is no model to block — callers that
  /// race past an exhausted or budget-tripped search would otherwise block
  /// garbage), InvalidArgument on an out-of-range variable; Ok otherwise.
  Status BlockModel(const std::vector<int32_t>& vars);

  int64_t num_conflicts() const { return stats_conflicts_; }
  int64_t num_decisions() const { return stats_decisions_; }
  int64_t num_propagations() const { return stats_propagations_; }
  /// Restarts performed across all Solve() calls.
  int64_t num_restarts() const { return stats_restarts_; }
  /// Learnt clauses recorded across all Solve() calls (size >= 2; unit
  /// learnts become level-0 assignments instead).
  int64_t num_learnt() const { return stats_learnt_; }
  /// Learnt clauses deleted by database reductions.
  int64_t num_reduced() const { return stats_reduced_; }
  /// Current clause-arena footprint (after garbage collection).
  int64_t arena_bytes() const {
    return static_cast<int64_t>(arena_.size()) * sizeof(uint32_t);
  }

 private:
  enum : int8_t { kUndef = 0, kTrue = 1, kFalse = -1 };

  static constexpr SatLit kLitUndef = -1;
  /// Reason encoding per assigned variable: kReasonNone for decisions and
  /// level-0 facts, (kBinaryReason | other_literal) for binary-clause
  /// implications, otherwise the ClauseRef of the implying arena clause.
  static constexpr uint32_t kReasonNone = 0xFFFFFFFFu;
  static constexpr uint32_t kBinaryReason = 0x80000000u;

  /// One entry in a long-clause watch list. `blocker` is some other literal
  /// of the clause; if it is already true the clause is satisfied and the
  /// arena line is never touched (the main cache win of the scheme).
  struct Watcher {
    ClauseRef ref;
    SatLit blocker;
  };

  // Arena clause layout (uint32_t words):
  //   [0] header:  size << 2 | deleted << 1 | learnt
  //   [1] LBD (learnt clauses; 0 for problem clauses)
  //   [2] activity (float bits; learnt clauses)
  //   [3..3+size) literals
  uint32_t ClauseSize(ClauseRef ref) const { return arena_[ref] >> 2; }
  bool ClauseLearnt(ClauseRef ref) const { return (arena_[ref] & 1u) != 0; }
  bool ClauseDeleted(ClauseRef ref) const { return (arena_[ref] & 2u) != 0; }
  void MarkDeleted(ClauseRef ref) { arena_[ref] |= 2u; }
  void SetClauseSize(ClauseRef ref, uint32_t size) {
    arena_[ref] = (size << 2) | (arena_[ref] & 3u);
  }
  uint32_t ClauseLbd(ClauseRef ref) const { return arena_[ref + 1]; }
  float ClauseActivity(ClauseRef ref) const;
  void SetClauseActivity(ClauseRef ref, float activity);
  SatLit ClauseLit(ClauseRef ref, uint32_t i) const {
    return static_cast<SatLit>(arena_[ref + 3 + i]);
  }
  ClauseRef AllocClause(const SatLit* lits, uint32_t size, bool learnt,
                        uint32_t lbd);

  int8_t ValueOfLit(SatLit lit) const {
    const int8_t v = assign_[LitVar(lit)];
    if (v == kUndef) return kUndef;
    return LitIsNeg(lit) ? static_cast<int8_t>(-v) : v;
  }
  uint32_t AbstractLevel(int32_t var) const {
    return 1u << (level_[var] & 31);
  }

  void AttachBinary(SatLit a, SatLit b);
  void Enqueue(SatLit lit, uint32_t reason);
  /// Returns the ClauseRef of a conflicting clause (kReasonNone if no
  /// conflict). Binary conflicts are materialized into bin_conflict_ and
  /// reported as kBinaryReason.
  uint32_t Propagate();
  /// 1UIP conflict analysis + (configurable) recursive minimization; fills
  /// `learnt` ([0] = asserting literal), computes the clause LBD, and
  /// returns the backtrack level.
  int32_t Analyze(uint32_t conflict, std::vector<SatLit>* learnt,
                  uint32_t* lbd);
  bool LitRedundant(SatLit lit, uint32_t abstract_levels);
  uint32_t ComputeLbd(const std::vector<SatLit>& lits);
  void Backtrack(int32_t level);
  void BumpVar(int32_t var);
  void BumpClause(ClauseRef ref);
  void DecayActivities();
  int32_t PickBranchVar();

  /// Deletes the worse half of the non-glue learnt clauses (sorted by LBD,
  /// ties by activity) and garbage-collects. Level 0 only.
  void ReduceDb();
  /// Compacts the arena: drops deleted and level-0-satisfied clauses,
  /// strips false-at-level-0 literals (demoting shrunk clauses to the
  /// binary lists or the trail), remaps problems_/learnts_, and rebuilds
  /// every long-clause watch list. Level 0 only.
  void GarbageCollect();
  void RebuildWatches();
  /// Bounded one-shot preprocessing at the first Solve(): occurrence-list
  /// subsumption and self-subsuming resolution over the problem clauses
  /// (binary clauses do not participate), capped by an occurrence-list
  /// ceiling and a global comparison budget.
  void Preprocess();

  // Indexed max-heap over variable activities.
  void HeapInsert(int32_t var);
  void HeapPercolateUp(int32_t pos);
  void HeapPercolateDown(int32_t pos);
  int32_t HeapPopMax();
  bool HeapContains(int32_t var) const { return heap_position_[var] >= 0; }

  Config config_;

  std::vector<uint32_t> arena_;        // flat clause storage
  std::vector<ClauseRef> problems_;    // live problem clauses (size >= 3)
  std::vector<ClauseRef> learnts_;     // live learnt clauses (size >= 3)
  std::vector<std::vector<Watcher>> watches_;  // literal -> long watchers
  std::vector<std::vector<SatLit>> bin_watches_;  // literal -> other lit

  std::vector<int8_t> assign_;   // variable -> kUndef/kTrue/kFalse
  std::vector<int8_t> phase_;    // saved phases
  std::vector<int32_t> level_;   // variable -> decision level
  std::vector<uint32_t> reason_;  // variable -> tagged reason
  std::vector<SatLit> trail_;
  std::vector<int32_t> trail_limits_;  // decision-level boundaries
  size_t propagate_head_ = 0;
  SatLit bin_conflict_[2] = {kLitUndef, kLitUndef};  // binary conflict lits

  std::vector<double> activity_;
  std::vector<int32_t> heap_;           // heap of variables
  std::vector<int32_t> heap_position_;  // variable -> heap index or -1
  double activity_increment_ = 1.0;
  double clause_activity_increment_ = 1.0;
  std::vector<int8_t> seen_;            // conflict-analysis scratch flags
  std::vector<int32_t> to_clear_;       // seen_ vars to reset after Analyze
  std::vector<SatLit> redundant_stack_;  // LitRedundant worklist
  std::vector<uint32_t> lbd_stamp_;      // level -> stamp for LBD counting
  uint32_t lbd_stamp_counter_ = 0;
  std::vector<SatLit> scratch_;          // GC simplification buffer
  std::vector<SatLit> add_scratch_;      // AddLits simplification buffer

  std::vector<int8_t> model_;
  bool unsat_ = false;
  bool preprocessed_ = false;
  SatResult last_result_ = SatResult::kUnknown;
  int64_t conflict_budget_ = 0;
  size_t reduce_threshold_ = 2000;  // learnt clauses that trigger ReduceDb
  ExecutionContext* context_ = nullptr;

  int64_t stats_conflicts_ = 0;
  int64_t stats_decisions_ = 0;
  int64_t stats_propagations_ = 0;
  int64_t stats_restarts_ = 0;
  int64_t stats_learnt_ = 0;
  int64_t stats_reduced_ = 0;
};

}  // namespace tiebreak

#endif  // TIEBREAK_SAT_SOLVER_H_
