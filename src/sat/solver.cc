#include "sat/solver.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "util/execution_context.h"

namespace tiebreak {

namespace {
constexpr double kActivityRescaleThreshold = 1e100;
constexpr double kActivityDecayFactor = 0.95;
constexpr float kClauseActivityRescale = 1e20f;
constexpr double kClauseActivityDecayFactor = 0.999;
constexpr int64_t kRestartBase = 100;
/// Learnt clauses with LBD <= kGlueLbd ("glue" clauses) are never deleted.
constexpr uint32_t kGlueLbd = 2;
/// Preprocessing bounds: total literal comparisons across the whole pass,
/// the occurrence-list size above which a clause is not used as a subsumer,
/// and the largest clause that may act as a subsumer.
constexpr int64_t kPreprocessBudget = 4'000'000;
constexpr size_t kPreprocessOccCap = 500;
constexpr uint32_t kPreprocessMaxClause = 30;
/// Learnt clauses wider than this skip recursive minimization: the probe
/// cost scales with width, while very wide clauses (e.g. conflicts on
/// model-blocking clauses during enumeration) are deletion fodder whose
/// polish never pays for itself.
constexpr size_t kMinimizeWidthCap = 100;

/// luby(2, x): the reluctant-doubling sequence 1,1,2,1,1,2,4,1,...
int64_t LubyPow2(int64_t x) {
  int64_t size = 1;
  int32_t seq = 0;
  while (size < x + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != x) {
    size = (size - 1) >> 1;
    --seq;
    x %= size;
  }
  return int64_t{1} << seq;
}
}  // namespace

static_assert(sizeof(float) == sizeof(uint32_t),
              "clause activities are stored as float bits in the arena");

float SatSolver::ClauseActivity(ClauseRef ref) const {
  float activity;
  std::memcpy(&activity, &arena_[ref + 2], sizeof(activity));
  return activity;
}

void SatSolver::SetClauseActivity(ClauseRef ref, float activity) {
  std::memcpy(&arena_[ref + 2], &activity, sizeof(activity));
}

int32_t SatSolver::NewVar() {
  const int32_t var = num_vars();
  assign_.push_back(kUndef);
  phase_.push_back(kFalse);  // default polarity: false (minimal-ish models)
  level_.push_back(0);
  reason_.push_back(kReasonNone);
  activity_.push_back(0.0);
  heap_position_.push_back(-1);
  seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  bin_watches_.emplace_back();
  bin_watches_.emplace_back();
  HeapInsert(var);
  return var;
}

void SatSolver::Reserve(int32_t num_vars) {
  const size_t n = static_cast<size_t>(num_vars);
  assign_.reserve(n);
  phase_.reserve(n);
  level_.reserve(n);
  reason_.reserve(n);
  activity_.reserve(n);
  heap_position_.reserve(n);
  seen_.reserve(n);
  watches_.reserve(2 * n);
  bin_watches_.reserve(2 * n);
  heap_.reserve(n);
  trail_.reserve(n);
}

ClauseRef SatSolver::AllocClause(const SatLit* lits, uint32_t size,
                                 bool learnt, uint32_t lbd) {
  TIEBREAK_CHECK_GE(size, 3u);
  TIEBREAK_CHECK_LT(arena_.size() + size + 3, size_t{1} << 31)
      << "clause arena overflow";
  const ClauseRef ref = static_cast<ClauseRef>(arena_.size());
  arena_.push_back((size << 2) | (learnt ? 1u : 0u));
  arena_.push_back(lbd);
  arena_.push_back(0);  // activity = 0.0f
  for (uint32_t k = 0; k < size; ++k) {
    arena_.push_back(static_cast<uint32_t>(lits[k]));
  }
  watches_[lits[0]].push_back(Watcher{ref, lits[1]});
  watches_[lits[1]].push_back(Watcher{ref, lits[0]});
  return ref;
}

void SatSolver::AttachBinary(SatLit a, SatLit b) {
  bin_watches_[a].push_back(b);
  bin_watches_[b].push_back(a);
}

Status SatSolver::AddClause(std::vector<SatLit> lits) {
  return AddLits(lits.data(), lits.size());
}

Status SatSolver::AddLits(const SatLit* lits, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (lits[i] < 0 || LitVar(lits[i]) >= num_vars()) {
      return Status::InvalidArgument(
          "SAT clause literal names a variable outside [0, num_vars())");
    }
  }
  if (unsat_) return Status::Ok();
  TIEBREAK_CHECK(trail_limits_.empty()) << "AddClause above decision level 0";

  // Simplify against the level-0 assignment; drop duplicates and detect
  // tautologies. The scratch buffer is reused across calls, so bulk
  // encoders pay no allocation per clause.
  add_scratch_.assign(lits, lits + n);
  std::sort(add_scratch_.begin(), add_scratch_.end());
  add_scratch_.erase(std::unique(add_scratch_.begin(), add_scratch_.end()),
                     add_scratch_.end());
  size_t kept = 0;
  for (size_t i = 0; i < add_scratch_.size(); ++i) {
    const SatLit lit = add_scratch_[i];
    if (i + 1 < add_scratch_.size() && add_scratch_[i + 1] == Negate(lit)) {
      return Status::Ok();  // tautology
    }
    const int8_t value = ValueOfLit(lit);
    if (value == kTrue) return Status::Ok();  // already satisfied at level 0
    if (value == kFalse) continue;
    add_scratch_[kept++] = lit;
  }
  if (kept == 0) {
    unsat_ = true;
    return Status::Ok();
  }
  if (kept == 1) {
    Enqueue(add_scratch_[0], kReasonNone);
    if (Propagate() != kReasonNone) unsat_ = true;
    return Status::Ok();
  }
  if (kept == 2) {
    AttachBinary(add_scratch_[0], add_scratch_[1]);
    return Status::Ok();
  }
  problems_.push_back(AllocClause(add_scratch_.data(),
                                  static_cast<uint32_t>(kept),
                                  /*learnt=*/false, /*lbd=*/0));
  return Status::Ok();
}

void SatSolver::Enqueue(SatLit lit, uint32_t reason) {
  const int32_t var = LitVar(lit);
  TIEBREAK_CHECK_EQ(assign_[var], kUndef);
  assign_[var] = LitIsNeg(lit) ? kFalse : kTrue;
  level_[var] = static_cast<int32_t>(trail_limits_.size());
  reason_[var] = reason;
  trail_.push_back(lit);
}

uint32_t SatSolver::Propagate() {
  while (propagate_head_ < trail_.size()) {
    const SatLit p = trail_[propagate_head_++];  // p just became true
    const SatLit fl = Negate(p);                 // fl just became false

    // Binary clauses live inline in their own watch lists: each entry is the
    // clause's other literal, so a visit is one value lookup, no arena line.
    for (const SatLit other : bin_watches_[fl]) {
      const int8_t value = ValueOfLit(other);
      if (value == kFalse) {
        bin_conflict_[0] = other;
        bin_conflict_[1] = fl;
        propagate_head_ = trail_.size();
        return kBinaryReason;
      }
      if (value == kUndef) {
        ++stats_propagations_;
        Enqueue(other, kBinaryReason | static_cast<uint32_t>(fl));
      }
    }

    std::vector<Watcher>& ws = watches_[fl];
    size_t read = 0;
    size_t write = 0;
    uint32_t conflict = kReasonNone;
    while (read < ws.size()) {
      const Watcher w = ws[read++];
      // Blocking literal: if it is already true the clause is satisfied and
      // the arena is never touched.
      if (ValueOfLit(w.blocker) == kTrue) {
        ws[write++] = w;
        continue;
      }
      uint32_t* c = &arena_[w.ref];
      if (static_cast<SatLit>(c[3]) == fl) std::swap(c[3], c[4]);
      // Invariant: lits[1] == fl from here on.
      const SatLit first = static_cast<SatLit>(c[3]);
      if (first != w.blocker && ValueOfLit(first) == kTrue) {
        ws[write++] = Watcher{w.ref, first};
        continue;
      }
      const uint32_t size = c[0] >> 2;
      bool rewatched = false;
      for (uint32_t k = 2; k < size; ++k) {
        const SatLit candidate = static_cast<SatLit>(c[3 + k]);
        if (ValueOfLit(candidate) != kFalse) {
          c[4] = static_cast<uint32_t>(candidate);
          c[3 + k] = static_cast<uint32_t>(fl);
          watches_[candidate].push_back(Watcher{w.ref, first});
          rewatched = true;
          break;
        }
      }
      if (rewatched) continue;
      // Clause is unit (first undef) or conflicting (first false).
      ws[write++] = Watcher{w.ref, first};
      if (ValueOfLit(first) == kFalse) {
        while (read < ws.size()) ws[write++] = ws[read++];
        conflict = w.ref;
        break;
      }
      ++stats_propagations_;
      Enqueue(first, w.ref);
    }
    ws.resize(write);
    if (conflict != kReasonNone) {
      propagate_head_ = trail_.size();
      return conflict;
    }
  }
  return kReasonNone;
}

int32_t SatSolver::Analyze(uint32_t conflict, std::vector<SatLit>* learnt,
                           uint32_t* lbd) {
  learnt->clear();
  learnt->push_back(0);  // slot for the asserting (1UIP) literal
  const int32_t current_level = static_cast<int32_t>(trail_limits_.size());
  int32_t open_paths = 0;
  SatLit pivot = kLitUndef;
  int32_t trail_index = static_cast<int32_t>(trail_.size()) - 1;
  uint32_t reason = conflict;
  to_clear_.clear();

  do {
    TIEBREAK_CHECK(reason != kReasonNone)
        << "missing reason during conflict analysis";
    SatLit binbuf[2];
    const SatLit* lits;
    uint32_t size;
    if ((reason & kBinaryReason) != 0) {
      if (pivot == kLitUndef) {
        // The conflict itself was a falsified binary clause.
        binbuf[0] = bin_conflict_[0];
        binbuf[1] = bin_conflict_[1];
      } else {
        binbuf[0] = pivot;  // implied literal, skipped below
        binbuf[1] = static_cast<SatLit>(reason & ~kBinaryReason);
      }
      lits = binbuf;
      size = 2;
    } else {
      if (ClauseLearnt(reason)) BumpClause(reason);
      lits = reinterpret_cast<const SatLit*>(arena_.data() + reason + 3);
      size = ClauseSize(reason);
    }
    for (uint32_t j = (pivot == kLitUndef ? 0u : 1u); j < size; ++j) {
      const SatLit q = lits[j];
      const int32_t var = LitVar(q);
      if (seen_[var] || level_[var] == 0) continue;
      seen_[var] = 1;
      to_clear_.push_back(var);
      BumpVar(var);
      if (level_[var] >= current_level) {
        ++open_paths;
      } else {
        learnt->push_back(q);
      }
    }
    while (!seen_[LitVar(trail_[trail_index])]) --trail_index;
    pivot = trail_[trail_index];
    --trail_index;
    reason = reason_[LitVar(pivot)];
    seen_[LitVar(pivot)] = 0;
    --open_paths;
  } while (open_paths > 0);
  (*learnt)[0] = Negate(pivot);

  // Recursive minimization: drop literals whose reason chains stay within
  // the levels already present in the clause (dominated literals). Bounded
  // by width — see kMinimizeWidthCap.
  if (config_.minimize_learnt && learnt->size() > 1 &&
      learnt->size() <= kMinimizeWidthCap) {
    uint32_t abstract_levels = 0;
    for (size_t i = 1; i < learnt->size(); ++i) {
      abstract_levels |= AbstractLevel(LitVar((*learnt)[i]));
    }
    size_t out = 1;
    for (size_t i = 1; i < learnt->size(); ++i) {
      const SatLit q = (*learnt)[i];
      if (reason_[LitVar(q)] == kReasonNone ||
          !LitRedundant(q, abstract_levels)) {
        (*learnt)[out++] = q;
      }
    }
    learnt->resize(out);
  }

  *lbd = ComputeLbd(*learnt);
  for (const int32_t var : to_clear_) seen_[var] = 0;

  if (learnt->size() == 1) return 0;
  // Move a literal of maximal level into the second watch position; that is
  // the backtrack level and keeps the watch invariant after jumping back.
  size_t best = 1;
  for (size_t j = 2; j < learnt->size(); ++j) {
    if (level_[LitVar((*learnt)[j])] > level_[LitVar((*learnt)[best])]) {
      best = j;
    }
  }
  std::swap((*learnt)[1], (*learnt)[best]);
  return level_[LitVar((*learnt)[1])];
}

bool SatSolver::LitRedundant(SatLit lit, uint32_t abstract_levels) {
  redundant_stack_.clear();
  redundant_stack_.push_back(lit);
  const size_t mark_base = to_clear_.size();
  while (!redundant_stack_.empty()) {
    const SatLit q = redundant_stack_.back();
    redundant_stack_.pop_back();
    const uint32_t reason = reason_[LitVar(q)];
    TIEBREAK_CHECK(reason != kReasonNone);
    SatLit binbuf[2];
    const SatLit* lits;
    uint32_t size;
    if ((reason & kBinaryReason) != 0) {
      binbuf[0] = q;  // implied position, skipped below
      binbuf[1] = static_cast<SatLit>(reason & ~kBinaryReason);
      lits = binbuf;
      size = 2;
    } else {
      lits = reinterpret_cast<const SatLit*>(arena_.data() + reason + 3);
      size = ClauseSize(reason);
    }
    for (uint32_t j = 1; j < size; ++j) {
      const int32_t var = LitVar(lits[j]);
      if (seen_[var] || level_[var] == 0) continue;
      if (reason_[var] == kReasonNone ||
          (AbstractLevel(var) & abstract_levels) == 0) {
        // Not redundant: undo the markings made during this probe. Marks
        // from successful probes stay — a proven-redundant literal is
        // dominated by the clause and acts as a cache.
        for (size_t k = mark_base; k < to_clear_.size(); ++k) {
          seen_[to_clear_[k]] = 0;
        }
        to_clear_.resize(mark_base);
        return false;
      }
      seen_[var] = 1;
      to_clear_.push_back(var);
      redundant_stack_.push_back(lits[j]);
    }
  }
  return true;
}

uint32_t SatSolver::ComputeLbd(const std::vector<SatLit>& lits) {
  if (lbd_stamp_.size() < trail_limits_.size() + 2) {
    lbd_stamp_.resize(trail_limits_.size() + 2, 0);
  }
  if (++lbd_stamp_counter_ == 0) {
    std::fill(lbd_stamp_.begin(), lbd_stamp_.end(), 0u);
    lbd_stamp_counter_ = 1;
  }
  uint32_t lbd = 0;
  for (const SatLit lit : lits) {
    const uint32_t lvl = static_cast<uint32_t>(level_[LitVar(lit)]);
    if (lvl == 0) continue;
    if (lbd_stamp_[lvl] != lbd_stamp_counter_) {
      lbd_stamp_[lvl] = lbd_stamp_counter_;
      ++lbd;
    }
  }
  return lbd;
}

void SatSolver::Backtrack(int32_t target_level) {
  if (static_cast<int32_t>(trail_limits_.size()) <= target_level) return;
  const size_t new_size = trail_limits_[target_level];
  for (size_t i = trail_.size(); i > new_size; --i) {
    const int32_t var = LitVar(trail_[i - 1]);
    phase_[var] = assign_[var];
    assign_[var] = kUndef;
    reason_[var] = kReasonNone;
    if (!HeapContains(var)) HeapInsert(var);
  }
  trail_.resize(new_size);
  trail_limits_.resize(target_level);
  propagate_head_ = trail_.size();
}

void SatSolver::BumpVar(int32_t var) {
  activity_[var] += activity_increment_;
  if (activity_[var] > kActivityRescaleThreshold) {
    for (double& a : activity_) a *= 1.0 / kActivityRescaleThreshold;
    activity_increment_ *= 1.0 / kActivityRescaleThreshold;
  }
  if (HeapContains(var)) HeapPercolateUp(heap_position_[var]);
}

void SatSolver::BumpClause(ClauseRef ref) {
  float activity = ClauseActivity(ref) +
                   static_cast<float>(clause_activity_increment_);
  if (activity > kClauseActivityRescale) {
    for (const ClauseRef r : learnts_) {
      SetClauseActivity(r, ClauseActivity(r) * (1.0f / kClauseActivityRescale));
    }
    clause_activity_increment_ *= 1.0 / kClauseActivityRescale;
    activity = ClauseActivity(ref) +
               static_cast<float>(clause_activity_increment_);
  }
  SetClauseActivity(ref, activity);
}

void SatSolver::DecayActivities() {
  activity_increment_ /= kActivityDecayFactor;
  clause_activity_increment_ /= kClauseActivityDecayFactor;
}

// --------------------------- indexed max-heap -----------------------------

void SatSolver::HeapInsert(int32_t var) {
  heap_position_[var] = static_cast<int32_t>(heap_.size());
  heap_.push_back(var);
  HeapPercolateUp(heap_position_[var]);
}

void SatSolver::HeapPercolateUp(int32_t pos) {
  const int32_t var = heap_[pos];
  while (pos > 0) {
    const int32_t parent = (pos - 1) / 2;
    if (activity_[heap_[parent]] >= activity_[var]) break;
    heap_[pos] = heap_[parent];
    heap_position_[heap_[pos]] = pos;
    pos = parent;
  }
  heap_[pos] = var;
  heap_position_[var] = pos;
}

void SatSolver::HeapPercolateDown(int32_t pos) {
  const int32_t var = heap_[pos];
  const int32_t size = static_cast<int32_t>(heap_.size());
  while (true) {
    int32_t child = 2 * pos + 1;
    if (child >= size) break;
    if (child + 1 < size &&
        activity_[heap_[child + 1]] > activity_[heap_[child]]) {
      ++child;
    }
    if (activity_[heap_[child]] <= activity_[var]) break;
    heap_[pos] = heap_[child];
    heap_position_[heap_[pos]] = pos;
    pos = child;
  }
  heap_[pos] = var;
  heap_position_[var] = pos;
}

int32_t SatSolver::HeapPopMax() {
  const int32_t top = heap_[0];
  heap_position_[top] = -1;
  const int32_t last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_[0] = last;
    heap_position_[last] = 0;
    HeapPercolateDown(0);
  }
  return top;
}

int32_t SatSolver::PickBranchVar() {
  while (!heap_.empty()) {
    const int32_t var = HeapPopMax();
    if (assign_[var] == kUndef) return var;
  }
  return -1;
}

// --------------------- clause database maintenance ------------------------

void SatSolver::ReduceDb() {
  TIEBREAK_CHECK(trail_limits_.empty());
  // Sort by quality: low LBD first, ties broken by activity. Glue clauses
  // (LBD <= 2) sort to the front and are never deleted.
  std::sort(learnts_.begin(), learnts_.end(),
            [this](ClauseRef a, ClauseRef b) {
              const uint32_t lbd_a = ClauseLbd(a);
              const uint32_t lbd_b = ClauseLbd(b);
              if (lbd_a != lbd_b) return lbd_a < lbd_b;
              return ClauseActivity(a) > ClauseActivity(b);
            });
  size_t first_reducible = 0;
  while (first_reducible < learnts_.size() &&
         ClauseLbd(learnts_[first_reducible]) <= kGlueLbd) {
    ++first_reducible;
  }
  const size_t keep =
      first_reducible + (learnts_.size() - first_reducible) / 2;
  for (size_t i = keep; i < learnts_.size(); ++i) {
    MarkDeleted(learnts_[i]);
    ++stats_reduced_;
  }
  GarbageCollect();
}

void SatSolver::GarbageCollect() {
  TIEBREAK_CHECK(trail_limits_.empty());
  // Level-0 assignments are permanent facts; conflict analysis never
  // dereferences their reasons (level-0 literals are skipped everywhere),
  // so the refs are dropped instead of remapped.
  for (const SatLit lit : trail_) reason_[LitVar(lit)] = kReasonNone;
  std::vector<uint32_t> old;
  old.swap(arena_);
  arena_.reserve(old.size());
  const auto compact = [&](std::vector<ClauseRef>* list) {
    size_t out = 0;
    for (const ClauseRef ref : *list) {
      const uint32_t header = old[ref];
      if ((header & 2u) != 0) continue;  // deleted
      const uint32_t size = header >> 2;
      // Level-0 simplification: drop satisfied clauses, strip false
      // literals. Afterwards every surviving literal is unassigned, so
      // watching the first two is sound.
      scratch_.clear();
      bool satisfied = false;
      for (uint32_t k = 0; k < size && !satisfied; ++k) {
        const SatLit lit = static_cast<SatLit>(old[ref + 3 + k]);
        const int8_t value = ValueOfLit(lit);
        if (value == kTrue) {
          satisfied = true;
        } else if (value == kUndef) {
          scratch_.push_back(lit);
        }
      }
      if (satisfied) continue;
      if (scratch_.empty()) {
        unsat_ = true;
        continue;
      }
      if (scratch_.size() == 1) {
        Enqueue(scratch_[0], kReasonNone);  // propagated after the rebuild
        continue;
      }
      if (scratch_.size() == 2) {
        AttachBinary(scratch_[0], scratch_[1]);
        continue;
      }
      const ClauseRef moved = static_cast<ClauseRef>(arena_.size());
      arena_.push_back((static_cast<uint32_t>(scratch_.size()) << 2) |
                       (header & 1u));
      arena_.push_back(old[ref + 1]);
      arena_.push_back(old[ref + 2]);
      for (const SatLit lit : scratch_) {
        arena_.push_back(static_cast<uint32_t>(lit));
      }
      (*list)[out++] = moved;
    }
    list->resize(out);
  };
  compact(&problems_);
  compact(&learnts_);
  RebuildWatches();
  if (Propagate() != kReasonNone) unsat_ = true;
}

void SatSolver::RebuildWatches() {
  for (std::vector<Watcher>& ws : watches_) ws.clear();
  const auto attach = [&](const std::vector<ClauseRef>& list) {
    for (const ClauseRef ref : list) {
      const SatLit l0 = ClauseLit(ref, 0);
      const SatLit l1 = ClauseLit(ref, 1);
      watches_[l0].push_back(Watcher{ref, l1});
      watches_[l1].push_back(Watcher{ref, l0});
    }
  };
  attach(problems_);
  attach(learnts_);
}

void SatSolver::Preprocess() {
  TIEBREAK_CHECK(trail_limits_.empty());
  GarbageCollect();  // level-0 simplify so occurrence lists see clean clauses
  if (unsat_) return;

  // Occurrence lists over the problem clauses, indexed by variable, plus a
  // 64-bit variable signature per clause for a cheap non-subset filter.
  // Binary clauses live outside the arena and do not participate.
  std::vector<std::vector<ClauseRef>> occ(num_vars());
  std::unordered_map<ClauseRef, uint64_t> sig;
  sig.reserve(problems_.size() * 2);
  const auto signature_of = [this](ClauseRef ref) {
    uint64_t s = 0;
    const uint32_t size = ClauseSize(ref);
    for (uint32_t k = 0; k < size; ++k) {
      s |= uint64_t{1} << (LitVar(ClauseLit(ref, k)) & 63);
    }
    return s;
  };
  for (const ClauseRef ref : problems_) {
    const uint32_t size = ClauseSize(ref);
    for (uint32_t k = 0; k < size; ++k) {
      occ[LitVar(ClauseLit(ref, k))].push_back(ref);
    }
    sig.emplace(ref, signature_of(ref));
  }

  // Self-subsuming resolution: remove `lit` from the clause. A clause that
  // shrinks to two literals is demoted to the binary watch lists (arena
  // clauses are always size >= 3, so the result is never smaller).
  const auto strengthen = [&](ClauseRef ref, SatLit lit) {
    const uint32_t size = ClauseSize(ref);
    uint32_t idx = size;
    for (uint32_t k = 0; k < size; ++k) {
      if (ClauseLit(ref, k) == lit) {
        idx = k;
        break;
      }
    }
    TIEBREAK_CHECK_LT(idx, size);
    for (uint32_t k = idx + 1; k < size; ++k) {
      arena_[ref + 3 + k - 1] = arena_[ref + 3 + k];
    }
    SetClauseSize(ref, size - 1);
    if (size - 1 == 2) {
      AttachBinary(ClauseLit(ref, 0), ClauseLit(ref, 1));
      MarkDeleted(ref);
      sig.erase(ref);
    } else {
      sig[ref] = signature_of(ref);
    }
  };

  int64_t budget = kPreprocessBudget;
  for (const ClauseRef c : problems_) {
    if (budget <= 0) break;
    if (ClauseDeleted(c)) continue;
    if (ClauseSize(c) > kPreprocessMaxClause) continue;
    // Scan the occurrence list of c's rarest variable for candidates.
    int32_t best_var = -1;
    size_t best_occ = kPreprocessOccCap + 1;
    const uint32_t c_size = ClauseSize(c);
    for (uint32_t k = 0; k < c_size; ++k) {
      const int32_t var = LitVar(ClauseLit(c, k));
      if (occ[var].size() < best_occ) {
        best_occ = occ[var].size();
        best_var = var;
      }
    }
    if (best_var < 0) continue;  // every occurrence list is over the cap
    for (const ClauseRef d : occ[best_var]) {
      if (budget <= 0) break;
      if (d == c || ClauseDeleted(d) || ClauseDeleted(c)) continue;
      const uint32_t d_size = ClauseSize(d);
      if (d_size < ClauseSize(c)) continue;
      const auto d_sig = sig.find(d);
      if (d_sig == sig.end()) continue;
      if ((sig.at(c) & ~d_sig->second) != 0) continue;  // not a subset
      const uint32_t csz = ClauseSize(c);
      budget -= static_cast<int64_t>(csz) * d_size;
      // Subset test allowing one flipped literal: an exact subset means c
      // subsumes d; a subset modulo one flipped literal means resolving on
      // it yields a strict strengthening of d (self-subsuming resolution).
      SatLit flip = kLitUndef;
      bool subset = true;
      for (uint32_t i = 0; i < csz && subset; ++i) {
        const SatLit lc = ClauseLit(c, i);
        bool found = false;
        for (uint32_t j = 0; j < d_size; ++j) {
          const SatLit ld = ClauseLit(d, j);
          if (ld == lc) {
            found = true;
            break;
          }
          if (ld == Negate(lc)) {
            if (flip == kLitUndef) {
              flip = ld;
              found = true;
            }
            break;
          }
        }
        subset = found;
      }
      if (!subset) continue;
      if (flip == kLitUndef) {
        MarkDeleted(d);  // c ⊨ d
      } else {
        strengthen(d, flip);
      }
    }
  }
  GarbageCollect();  // drop deletions, attach demoted binaries, re-propagate
}

// ------------------------------- search -----------------------------------

SatResult SatSolver::Solve() {
  if (unsat_) {
    last_result_ = SatResult::kUnsat;
    return SatResult::kUnsat;
  }
  // Entry checkpoint: an already-tripped context returns kUnknown before
  // any search.
  if (context_ != nullptr && !context_->Checkpoint("sat", 1).ok()) {
    last_result_ = SatResult::kUnknown;
    return SatResult::kUnknown;
  }
  if (Propagate() != kReasonNone) {
    unsat_ = true;
    last_result_ = SatResult::kUnsat;
    return SatResult::kUnsat;
  }
  if (!preprocessed_) {
    preprocessed_ = true;
    if (config_.preprocess) {
      Preprocess();
      if (unsat_) {
        last_result_ = SatResult::kUnsat;
        return SatResult::kUnsat;
      }
    }
  }

  const int64_t budget_start = stats_conflicts_;
  int64_t conflicts_since_restart = 0;
  int64_t restart_number = 0;
  double restart_limit = static_cast<double>(kRestartBase);
  std::vector<SatLit> learnt;

  while (true) {
    const uint32_t conflict = Propagate();
    if (conflict != kReasonNone) {
      ++stats_conflicts_;
      ++conflicts_since_restart;
      if (trail_limits_.empty()) {
        unsat_ = true;
        last_result_ = SatResult::kUnsat;
        return SatResult::kUnsat;
      }
      uint32_t lbd = 0;
      const int32_t back_level = Analyze(conflict, &learnt, &lbd);
      Backtrack(back_level);
      if (learnt.size() == 1) {
        Enqueue(learnt[0], kReasonNone);
      } else if (learnt.size() == 2) {
        AttachBinary(learnt[0], learnt[1]);
        ++stats_learnt_;
        Enqueue(learnt[0],
                kBinaryReason | static_cast<uint32_t>(learnt[1]));
      } else {
        const ClauseRef ref =
            AllocClause(learnt.data(), static_cast<uint32_t>(learnt.size()),
                        /*learnt=*/true, lbd);
        learnts_.push_back(ref);
        ++stats_learnt_;
        BumpClause(ref);
        Enqueue(learnt[0], ref);
      }
      DecayActivities();
      if (conflict_budget_ > 0 &&
          stats_conflicts_ - budget_start >= conflict_budget_) {
        Backtrack(0);
        last_result_ = SatResult::kUnknown;
        return SatResult::kUnknown;
      }
      // Cooperative cancellation: one relaxed load per conflict. Budget
      // and deadline work is charged at restart boundaries below.
      if (context_ != nullptr && context_->stopped()) {
        Backtrack(0);
        last_result_ = SatResult::kUnknown;
        return SatResult::kUnknown;
      }
      continue;
    }
    if (conflicts_since_restart >= static_cast<int64_t>(restart_limit)) {
      // Restart boundary: fold the restart's conflicts into the shared
      // step budget and check the deadline with a real clock read (Luby
      // restarts are frequent but cheap; the checkpoint is amortized).
      if (context_ != nullptr) {
        Status governed = context_->Checkpoint("sat", conflicts_since_restart);
        if (governed.ok()) governed = context_->CheckNow("sat");
        if (!governed.ok()) {
          Backtrack(0);
          last_result_ = SatResult::kUnknown;
          return SatResult::kUnknown;
        }
      }
      conflicts_since_restart = 0;
      ++restart_number;
      ++stats_restarts_;
      restart_limit = config_.luby_restarts
                          ? static_cast<double>(kRestartBase *
                                                LubyPow2(restart_number))
                          : restart_limit * 1.5;
      Backtrack(0);
      // Learnt-database reduction happens at restart boundaries (level 0),
      // where the compacting GC can rebuild watches safely.
      if (config_.reduce_db && learnts_.size() >= reduce_threshold_) {
        ReduceDb();
        reduce_threshold_ += 500;
        if (unsat_) {  // GC-time propagation found a level-0 conflict
          last_result_ = SatResult::kUnsat;
          return SatResult::kUnsat;
        }
      }
      continue;
    }
    const int32_t var = PickBranchVar();
    if (var == -1) {
      model_.assign(assign_.begin(), assign_.end());
      Backtrack(0);
      last_result_ = SatResult::kSat;
      return SatResult::kSat;
    }
    ++stats_decisions_;
    trail_limits_.push_back(static_cast<int32_t>(trail_.size()));
    Enqueue(MakeLit(var, phase_[var] == kTrue), kReasonNone);
  }
}

Status SatSolver::BlockModel(const std::vector<int32_t>& vars) {
  if (last_result_ != SatResult::kSat) {
    return Status::FailedPrecondition(
        "BlockModel requires the preceding Solve() to return kSat");
  }
  std::vector<SatLit> clause;
  clause.reserve(vars.size());
  for (const int32_t var : vars) {
    if (var < 0 || var >= static_cast<int32_t>(model_.size())) {
      return Status::InvalidArgument(
          "BlockModel variable has no recorded model value");
    }
    clause.push_back(MakeLit(var, model_[var] <= 0));
  }
  return AddClause(std::move(clause));
}

}  // namespace tiebreak
