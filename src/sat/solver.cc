#include "sat/solver.h"

#include <algorithm>

#include "util/execution_context.h"

namespace tiebreak {

namespace {
constexpr double kActivityRescaleThreshold = 1e100;
constexpr double kActivityDecayFactor = 0.95;
}  // namespace

int32_t SatSolver::NewVar() {
  const int32_t var = num_vars();
  assign_.push_back(kUndef);
  phase_.push_back(kFalse);  // default polarity: false (minimal-ish models)
  level_.push_back(0);
  reason_.push_back(-1);
  activity_.push_back(0.0);
  heap_position_.push_back(-1);
  seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  HeapInsert(var);
  return var;
}

void SatSolver::AddClause(std::vector<SatLit> lits) {
  if (unsat_) return;
  TIEBREAK_CHECK(trail_limits_.empty()) << "AddClause above decision level 0";

  // Simplify against the level-0 assignment; drop duplicates and detect
  // tautologies.
  std::sort(lits.begin(), lits.end());
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  std::vector<SatLit> kept;
  kept.reserve(lits.size());
  for (size_t i = 0; i < lits.size(); ++i) {
    const SatLit lit = lits[i];
    TIEBREAK_CHECK_GE(LitVar(lit), 0);
    TIEBREAK_CHECK_LT(LitVar(lit), num_vars()) << "literal for unknown var";
    if (i + 1 < lits.size() && lits[i + 1] == Negate(lit)) return;  // taut.
    const int8_t value = ValueOfLit(lit);
    if (value == kTrue) return;  // already satisfied at level 0
    if (value == kFalse) continue;
    kept.push_back(lit);
  }
  if (kept.empty()) {
    unsat_ = true;
    return;
  }
  if (kept.size() == 1) {
    Enqueue(kept[0], -1);
    if (Propagate() != -1) unsat_ = true;
    return;
  }
  clauses_.push_back(Clause{std::move(kept), /*learnt=*/false});
  AttachClause(static_cast<int32_t>(clauses_.size()) - 1);
}

void SatSolver::AttachClause(int32_t clause_index) {
  const Clause& c = clauses_[clause_index];
  TIEBREAK_CHECK_GE(c.lits.size(), 2u);
  watches_[c.lits[0]].push_back(clause_index);
  watches_[c.lits[1]].push_back(clause_index);
}

void SatSolver::Enqueue(SatLit lit, int32_t reason) {
  const int32_t var = LitVar(lit);
  TIEBREAK_CHECK_EQ(assign_[var], kUndef);
  assign_[var] = LitIsNeg(lit) ? kFalse : kTrue;
  level_[var] = static_cast<int32_t>(trail_limits_.size());
  reason_[var] = reason;
  trail_.push_back(lit);
}

int32_t SatSolver::Propagate() {
  while (propagate_head_ < trail_.size()) {
    const SatLit p = trail_[propagate_head_++];  // p just became true
    const SatLit fl = Negate(p);                 // fl just became false
    std::vector<int32_t>& ws = watches_[fl];
    size_t read = 0, write = 0;
    int32_t conflict = -1;
    while (read < ws.size()) {
      const int32_t ci = ws[read++];
      Clause& c = clauses_[ci];
      if (c.lits[0] == fl) std::swap(c.lits[0], c.lits[1]);
      // Invariant: c.lits[1] == fl from here on.
      if (ValueOfLit(c.lits[0]) == kTrue) {
        ws[write++] = ci;
        continue;
      }
      bool rewatched = false;
      for (size_t k = 2; k < c.lits.size(); ++k) {
        if (ValueOfLit(c.lits[k]) != kFalse) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[c.lits[1]].push_back(ci);
          rewatched = true;
          break;
        }
      }
      if (rewatched) continue;
      // Clause is unit (lits[0] undef) or conflicting (lits[0] false).
      ws[write++] = ci;
      if (ValueOfLit(c.lits[0]) == kFalse) {
        while (read < ws.size()) ws[write++] = ws[read++];
        conflict = ci;
        break;
      }
      ++stats_propagations_;
      Enqueue(c.lits[0], ci);
    }
    ws.resize(write);
    if (conflict != -1) {
      propagate_head_ = trail_.size();
      return conflict;
    }
  }
  return -1;
}

int32_t SatSolver::Analyze(int32_t conflict_clause,
                           std::vector<SatLit>* learnt) {
  learnt->clear();
  learnt->push_back(0);  // slot for the asserting (1UIP) literal
  const int32_t current_level = static_cast<int32_t>(trail_limits_.size());
  int32_t open_paths = 0;
  SatLit pivot = -1;
  int32_t trail_index = static_cast<int32_t>(trail_.size()) - 1;
  int32_t clause = conflict_clause;
  std::vector<int32_t> to_clear;

  do {
    TIEBREAK_CHECK_GE(clause, 0) << "missing reason during conflict analysis";
    const Clause& c = clauses_[clause];
    for (size_t j = (pivot == -1 ? 0 : 1); j < c.lits.size(); ++j) {
      const SatLit q = c.lits[j];
      const int32_t var = LitVar(q);
      if (seen_[var] || level_[var] == 0) continue;
      seen_[var] = 1;
      to_clear.push_back(var);
      BumpVar(var);
      if (level_[var] >= current_level) {
        ++open_paths;
      } else {
        learnt->push_back(q);
      }
    }
    while (!seen_[LitVar(trail_[trail_index])]) --trail_index;
    pivot = trail_[trail_index];
    --trail_index;
    clause = reason_[LitVar(pivot)];
    seen_[LitVar(pivot)] = 0;
    --open_paths;
  } while (open_paths > 0);
  (*learnt)[0] = Negate(pivot);

  for (int32_t var : to_clear) seen_[var] = 0;

  if (learnt->size() == 1) return 0;
  // Move a literal of maximal level into the second watch position; that is
  // the backtrack level and keeps the watch invariant after jumping back.
  size_t best = 1;
  for (size_t j = 2; j < learnt->size(); ++j) {
    if (level_[LitVar((*learnt)[j])] > level_[LitVar((*learnt)[best])]) {
      best = j;
    }
  }
  std::swap((*learnt)[1], (*learnt)[best]);
  return level_[LitVar((*learnt)[1])];
}

void SatSolver::Backtrack(int32_t target_level) {
  if (static_cast<int32_t>(trail_limits_.size()) <= target_level) return;
  const size_t new_size = trail_limits_[target_level];
  for (size_t i = trail_.size(); i > new_size; --i) {
    const int32_t var = LitVar(trail_[i - 1]);
    phase_[var] = assign_[var];
    assign_[var] = kUndef;
    reason_[var] = -1;
    if (!HeapContains(var)) HeapInsert(var);
  }
  trail_.resize(new_size);
  trail_limits_.resize(target_level);
  propagate_head_ = trail_.size();
}

void SatSolver::BumpVar(int32_t var) {
  activity_[var] += activity_increment_;
  if (activity_[var] > kActivityRescaleThreshold) {
    for (double& a : activity_) a *= 1.0 / kActivityRescaleThreshold;
    activity_increment_ *= 1.0 / kActivityRescaleThreshold;
  }
  if (HeapContains(var)) HeapPercolateUp(heap_position_[var]);
}

void SatSolver::DecayActivities() {
  activity_increment_ /= kActivityDecayFactor;
}

// --------------------------- indexed max-heap -----------------------------

void SatSolver::HeapInsert(int32_t var) {
  heap_position_[var] = static_cast<int32_t>(heap_.size());
  heap_.push_back(var);
  HeapPercolateUp(heap_position_[var]);
}

void SatSolver::HeapPercolateUp(int32_t pos) {
  const int32_t var = heap_[pos];
  while (pos > 0) {
    const int32_t parent = (pos - 1) / 2;
    if (activity_[heap_[parent]] >= activity_[var]) break;
    heap_[pos] = heap_[parent];
    heap_position_[heap_[pos]] = pos;
    pos = parent;
  }
  heap_[pos] = var;
  heap_position_[var] = pos;
}

void SatSolver::HeapPercolateDown(int32_t pos) {
  const int32_t var = heap_[pos];
  const int32_t size = static_cast<int32_t>(heap_.size());
  while (true) {
    int32_t child = 2 * pos + 1;
    if (child >= size) break;
    if (child + 1 < size &&
        activity_[heap_[child + 1]] > activity_[heap_[child]]) {
      ++child;
    }
    if (activity_[heap_[child]] <= activity_[var]) break;
    heap_[pos] = heap_[child];
    heap_position_[heap_[pos]] = pos;
    pos = child;
  }
  heap_[pos] = var;
  heap_position_[var] = pos;
}

int32_t SatSolver::HeapPopMax() {
  const int32_t top = heap_[0];
  heap_position_[top] = -1;
  const int32_t last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_[0] = last;
    heap_position_[last] = 0;
    HeapPercolateDown(0);
  }
  return top;
}

int32_t SatSolver::PickBranchVar() {
  while (!heap_.empty()) {
    const int32_t var = HeapPopMax();
    if (assign_[var] == kUndef) return var;
  }
  return -1;
}

// ------------------------------- search -----------------------------------

SatResult SatSolver::Solve() {
  if (unsat_) {
    last_result_ = SatResult::kUnsat;
    return SatResult::kUnsat;
  }
  // Entry checkpoint: an already-tripped context returns kUnknown before
  // any search.
  if (context_ != nullptr && !context_->Checkpoint("sat", 1).ok()) {
    last_result_ = SatResult::kUnknown;
    return SatResult::kUnknown;
  }
  if (Propagate() != -1) {
    unsat_ = true;
    last_result_ = SatResult::kUnsat;
    return SatResult::kUnsat;
  }

  const int64_t budget_start = stats_conflicts_;
  int64_t conflicts_since_restart = 0;
  double restart_limit = 100.0;
  std::vector<SatLit> learnt;

  while (true) {
    const int32_t conflict = Propagate();
    if (conflict != -1) {
      ++stats_conflicts_;
      ++conflicts_since_restart;
      if (trail_limits_.empty()) {
        unsat_ = true;
        last_result_ = SatResult::kUnsat;
        return SatResult::kUnsat;
      }
      const int32_t back_level = Analyze(conflict, &learnt);
      Backtrack(back_level);
      if (learnt.size() == 1) {
        Enqueue(learnt[0], -1);
      } else {
        clauses_.push_back(Clause{learnt, /*learnt=*/true});
        const int32_t ci = static_cast<int32_t>(clauses_.size()) - 1;
        AttachClause(ci);
        Enqueue(learnt[0], ci);
      }
      DecayActivities();
      if (conflict_budget_ > 0 &&
          stats_conflicts_ - budget_start >= conflict_budget_) {
        Backtrack(0);
        last_result_ = SatResult::kUnknown;
        return SatResult::kUnknown;
      }
      // Cooperative cancellation: one relaxed load per conflict. Budget
      // and deadline work is charged at restart boundaries below.
      if (context_ != nullptr && context_->stopped()) {
        Backtrack(0);
        last_result_ = SatResult::kUnknown;
        return SatResult::kUnknown;
      }
      continue;
    }
    if (conflicts_since_restart >= static_cast<int64_t>(restart_limit)) {
      // Restart boundary: fold the restart's conflicts into the shared
      // step budget and check the deadline with a real clock read
      // (restarts grow geometrically, so this stays rare).
      if (context_ != nullptr) {
        Status governed = context_->Checkpoint("sat", conflicts_since_restart);
        if (governed.ok()) governed = context_->CheckNow("sat");
        if (!governed.ok()) {
          Backtrack(0);
          last_result_ = SatResult::kUnknown;
          return SatResult::kUnknown;
        }
      }
      conflicts_since_restart = 0;
      restart_limit *= 1.5;
      Backtrack(0);
      continue;
    }
    const int32_t var = PickBranchVar();
    if (var == -1) {
      model_.assign(assign_.begin(), assign_.end());
      Backtrack(0);
      last_result_ = SatResult::kSat;
      return SatResult::kSat;
    }
    ++stats_decisions_;
    trail_limits_.push_back(static_cast<int32_t>(trail_.size()));
    Enqueue(MakeLit(var, phase_[var] == kTrue), -1);
  }
}

void SatSolver::BlockModel(const std::vector<int32_t>& vars) {
  TIEBREAK_CHECK(last_result_ == SatResult::kSat);
  std::vector<SatLit> clause;
  clause.reserve(vars.size());
  for (int32_t var : vars) {
    clause.push_back(MakeLit(var, !ModelValue(var)));
  }
  AddClause(std::move(clause));
}

}  // namespace tiebreak
