#include "graph/scc.h"

#include <algorithm>

namespace tiebreak {

namespace {

// Iterative Tarjan state per DFS frame.
struct Frame {
  int32_t node;
  size_t next_edge;  // index into OutEdges(node)
};

}  // namespace

SccResult ComputeScc(const SignedDigraph& graph) {
  TIEBREAK_CHECK(graph.finalized());
  const int32_t n = graph.num_nodes();
  SccResult result;
  result.component.assign(n, -1);

  constexpr int32_t kUnvisited = -1;
  std::vector<int32_t> index(n, kUnvisited);
  std::vector<int32_t> lowlink(n, 0);
  std::vector<char> on_stack(n, 0);
  std::vector<int32_t> tarjan_stack;
  std::vector<Frame> call_stack;
  int32_t next_index = 0;

  for (int32_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    call_stack.push_back(Frame{root, 0});
    index[root] = lowlink[root] = next_index++;
    tarjan_stack.push_back(root);
    on_stack[root] = 1;

    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const int32_t v = frame.node;
      auto out = graph.OutEdges(v);
      if (frame.next_edge < out.size()) {
        const int32_t w = graph.edge(out[frame.next_edge++]).to;
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          tarjan_stack.push_back(w);
          on_stack[w] = 1;
          call_stack.push_back(Frame{w, 0});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        call_stack.pop_back();
        if (!call_stack.empty()) {
          const int32_t parent = call_stack.back().node;
          lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
        }
        if (lowlink[v] == index[v]) {
          // v roots a component; pop it off the Tarjan stack.
          const int32_t comp = result.num_components++;
          result.members.emplace_back();
          while (true) {
            const int32_t w = tarjan_stack.back();
            tarjan_stack.pop_back();
            on_stack[w] = 0;
            result.component[w] = comp;
            result.members[comp].push_back(w);
            if (w == v) break;
          }
        }
      }
    }
  }
  return result;
}

Condensation CondenseScc(const SignedDigraph& graph, const SccResult& scc) {
  Condensation cond;
  cond.external_in_degree.assign(scc.num_components, 0);
  cond.has_internal_edge.assign(scc.num_components, 0);
  for (int32_t e = 0; e < graph.num_edges(); ++e) {
    const SignedEdge& edge = graph.edge(e);
    const int32_t from_comp = scc.component[edge.from];
    const int32_t to_comp = scc.component[edge.to];
    if (from_comp == to_comp) {
      cond.has_internal_edge[to_comp] = 1;
    } else {
      ++cond.external_in_degree[to_comp];
    }
  }
  return cond;
}

}  // namespace tiebreak
