#include "graph/scc.h"

namespace tiebreak {

namespace {

// Adjacency adapter over a finalized SignedDigraph: neighbors in OutEdges
// order (= edge insertion order; Finalize's counting scatter is stable).
struct DigraphAdjacency {
  const SignedDigraph* graph;

  using Cursor = size_t;  // index into OutEdges(node)

  int32_t num_nodes() const { return graph->num_nodes(); }
  bool Alive(int32_t) const { return true; }
  Cursor FirstEdge(int32_t) const { return 0; }
  int32_t NextNeighbor(int32_t node, Cursor& cursor) const {
    const auto out = graph->OutEdges(node);
    if (cursor >= out.size()) return -1;
    return graph->edge(out[cursor++]).to;
  }
};

}  // namespace

SccResult ComputeScc(const SignedDigraph& graph) {
  TIEBREAK_CHECK(graph.finalized());
  return ComputeSccOver(DigraphAdjacency{&graph});
}

Condensation CondenseScc(const SignedDigraph& graph, const SccResult& scc) {
  Condensation cond;
  cond.external_in_degree.assign(scc.num_components, 0);
  cond.has_internal_edge.assign(scc.num_components, 0);
  for (int32_t e = 0; e < graph.num_edges(); ++e) {
    const SignedEdge& edge = graph.edge(e);
    const int32_t from_comp = scc.component[edge.from];
    const int32_t to_comp = scc.component[edge.to];
    if (from_comp == to_comp) {
      cond.has_internal_edge[to_comp] = 1;
    } else {
      ++cond.external_in_degree[to_comp];
    }
  }
  return cond;
}

}  // namespace tiebreak
