#include "graph/digraph.h"

namespace tiebreak {

void SignedDigraph::Finalize() {
  if (finalized_) return;
  const int32_t n = num_nodes_;
  const int32_t m = num_edges();

  // Counting sort of edge ids by source (and by target for the in-index).
  out_offsets_.assign(n + 1, 0);
  in_offsets_.assign(n + 1, 0);
  for (const SignedEdge& e : edges_) {
    ++out_offsets_[e.from + 1];
    ++in_offsets_[e.to + 1];
  }
  for (int32_t v = 0; v < n; ++v) {
    out_offsets_[v + 1] += out_offsets_[v];
    in_offsets_[v + 1] += in_offsets_[v];
  }
  out_edge_ids_.resize(m);
  in_edge_ids_.resize(m);
  std::vector<int32_t> out_cursor(out_offsets_.begin(), out_offsets_.end() - 1);
  std::vector<int32_t> in_cursor(in_offsets_.begin(), in_offsets_.end() - 1);
  for (int32_t e = 0; e < m; ++e) {
    out_edge_ids_[out_cursor[edges_[e].from]++] = e;
    in_edge_ids_[in_cursor[edges_[e].to]++] = e;
  }
  finalized_ = true;
}

int32_t SignedDigraph::CountNegativeEdges() const {
  int32_t count = 0;
  for (const SignedEdge& e : edges_) count += e.negative ? 1 : 0;
  return count;
}

}  // namespace tiebreak
