// Strongly connected components (iterative Tarjan) and condensation
// statistics. The tie-breaking interpreters use bottom components (no
// incoming edges from other components) of the live ground graph; the
// structural analyses use SCCs of the program graph.
//
// The Tarjan core is a template over an adjacency adapter so the same
// traversal runs over a materialized SignedDigraph (ComputeScc) or directly
// over GroundGraph CSR spans with no digraph copy (ground/ground_scc.h).
// Both adapters enumerate neighbors in the same deterministic order, so
// component ids, member order and therefore every downstream tie
// orientation are identical across representations (asserted by
// interpreter_parallel_test.cc).
#ifndef TIEBREAK_GRAPH_SCC_H_
#define TIEBREAK_GRAPH_SCC_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/digraph.h"

namespace tiebreak {

/// Output of ComputeScc. Component ids are assigned in *reverse topological*
/// order of the condensation: if some edge goes from component A to
/// component B (A != B), then B's id is smaller than A's id.
struct SccResult {
  int32_t num_components = 0;
  /// node id -> component id (-1 for nodes the adjacency reports dead).
  std::vector<int32_t> component;
  /// component id -> member node ids, in Tarjan-stack pop order (front is
  /// the last-discovered member, back is the component's DFS root).
  std::vector<std::vector<int32_t>> members;
};

/// Iterative Tarjan over any adjacency adapter. The adapter supplies:
///   int32_t num_nodes() const;
///   bool Alive(int32_t node) const;           // dead nodes are skipped
///   Cursor FirstEdge(int32_t node) const;     // per-node iteration state
///   int32_t NextNeighbor(int32_t node, Cursor& c) const;
///     // next *alive* out-neighbor, or -1 when exhausted
/// Neighbor enumeration order determines DFS order and therefore member
/// order; adapters that must agree (digraph vs CSR) enumerate identically.
template <typename Adjacency>
SccResult ComputeSccOver(const Adjacency& adj) {
  const int32_t n = adj.num_nodes();
  SccResult result;
  result.component.assign(n, -1);

  constexpr int32_t kUnvisited = -1;
  std::vector<int32_t> index(n, kUnvisited);
  std::vector<int32_t> lowlink(n, 0);
  std::vector<char> on_stack(n, 0);
  std::vector<int32_t> tarjan_stack;
  struct Frame {
    int32_t node;
    typename Adjacency::Cursor cursor;
  };
  std::vector<Frame> call_stack;
  int32_t next_index = 0;

  for (int32_t root = 0; root < n; ++root) {
    if (!adj.Alive(root) || index[root] != kUnvisited) continue;
    call_stack.push_back(Frame{root, adj.FirstEdge(root)});
    index[root] = lowlink[root] = next_index++;
    tarjan_stack.push_back(root);
    on_stack[root] = 1;

    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const int32_t v = frame.node;
      const int32_t w = adj.NextNeighbor(v, frame.cursor);
      if (w >= 0) {
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          tarjan_stack.push_back(w);
          on_stack[w] = 1;
          call_stack.push_back(Frame{w, adj.FirstEdge(w)});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        call_stack.pop_back();
        if (!call_stack.empty()) {
          const int32_t parent = call_stack.back().node;
          lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
        }
        if (lowlink[v] == index[v]) {
          // v roots a component; pop it off the Tarjan stack.
          const int32_t comp = result.num_components++;
          result.members.emplace_back();
          while (true) {
            const int32_t u = tarjan_stack.back();
            tarjan_stack.pop_back();
            on_stack[u] = 0;
            result.component[u] = comp;
            result.members[comp].push_back(u);
            if (u == v) break;
          }
        }
      }
    }
  }
  return result;
}

/// Computes strongly connected components of a finalized graph.
SccResult ComputeScc(const SignedDigraph& graph);

/// Per-component condensation facts needed by the interpreters.
struct Condensation {
  /// Number of edges entering the component from *other* components.
  std::vector<int32_t> external_in_degree;
  /// Whether the component contains at least one internal edge (size > 1
  /// components always do; singletons only via self-loops).
  std::vector<char> has_internal_edge;
};

/// Computes condensation facts for `scc` over `graph`.
Condensation CondenseScc(const SignedDigraph& graph, const SccResult& scc);

}  // namespace tiebreak

#endif  // TIEBREAK_GRAPH_SCC_H_
