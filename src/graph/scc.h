// Strongly connected components (iterative Tarjan) and condensation
// statistics. The tie-breaking interpreters use bottom components (no
// incoming edges from other components) of the live ground graph; the
// structural analyses use SCCs of the program graph.
#ifndef TIEBREAK_GRAPH_SCC_H_
#define TIEBREAK_GRAPH_SCC_H_

#include <cstdint>
#include <vector>

#include "graph/digraph.h"

namespace tiebreak {

/// Output of ComputeScc. Component ids are assigned in *reverse topological*
/// order of the condensation: if some edge goes from component A to
/// component B (A != B), then B's id is smaller than A's id.
struct SccResult {
  int32_t num_components = 0;
  /// node id -> component id.
  std::vector<int32_t> component;
  /// component id -> member node ids.
  std::vector<std::vector<int32_t>> members;
};

/// Computes strongly connected components of a finalized graph.
SccResult ComputeScc(const SignedDigraph& graph);

/// Per-component condensation facts needed by the interpreters.
struct Condensation {
  /// Number of edges entering the component from *other* components.
  std::vector<int32_t> external_in_degree;
  /// Whether the component contains at least one internal edge (size > 1
  /// components always do; singletons only via self-loops).
  std::vector<char> has_internal_edge;
};

/// Computes condensation facts for `scc` over `graph`.
Condensation CondenseScc(const SignedDigraph& graph, const SccResult& scc);

}  // namespace tiebreak

#endif  // TIEBREAK_GRAPH_SCC_H_
