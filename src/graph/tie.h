// Lemma 1 of the paper: a strongly connected signed graph is a *tie* iff its
// nodes can be 2-partitioned so that positive edges stay inside a part and
// negative edges cross parts; equivalently, iff it contains no cycle with an
// odd number of negative edges ("odd cycle"). This header provides:
//
//  * CheckTie       — linear-time test + partition for one SCC (Lemma 1).
//  * HasOddCycle    — whole-graph test (call-consistency of program graphs).
//  * FindOddCycle   — extracts a *simple* odd cycle as an edge sequence
//                     (fuel for the Theorem 2/3 witness constructions).
//  * FindNegativeCycle — extracts a simple cycle containing at least one
//                     negative edge (fuel for the Theorem 5 construction).
#ifndef TIEBREAK_GRAPH_TIE_H_
#define TIEBREAK_GRAPH_TIE_H_

#include <cstdint>
#include <vector>

#include "graph/digraph.h"
#include "graph/scc.h"

namespace tiebreak {

/// Result of the Lemma-1 test on one strongly connected component.
struct TieCheckResult {
  bool is_tie = false;
  /// Parity side per member, aligned with the `members` vector passed in:
  /// side 0 = same parity as members.front(), side 1 = opposite. For a tie,
  /// positive internal edges connect equal sides and negative ones cross.
  std::vector<char> side;
  /// When !is_tie: an internal edge inconsistent with the spanning-tree
  /// parity (witness that an odd cycle passes through it); -1 otherwise.
  int32_t violating_edge = -1;
};

/// Runs the Lemma-1 partition test on the strongly connected component
/// `comp_id` whose members are `members` (as produced by ComputeScc).
/// Only internal edges (both endpoints in the component) are considered.
TieCheckResult CheckTie(const SignedDigraph& graph,
                        const std::vector<int32_t>& members,
                        const std::vector<int32_t>& component_of,
                        int32_t comp_id);

/// True iff some cycle of `graph` has an odd number of negative edges.
/// Linear time: SCC + Lemma-1 per component.
bool HasOddCycle(const SignedDigraph& graph);

/// Returns the edge ids of a *simple* cycle with an odd number of negative
/// edges (in traversal order, cycle[i].to == cycle[i+1].from, last wraps to
/// first), or an empty vector if the graph has no odd cycle.
std::vector<int32_t> FindOddCycle(const SignedDigraph& graph);

/// Returns the edge ids of a simple cycle containing at least one negative
/// edge, or empty if every cycle is all-positive (i.e. the graph is
/// "stratified" when read as a program graph).
std::vector<int32_t> FindNegativeCycle(const SignedDigraph& graph);

}  // namespace tiebreak

#endif  // TIEBREAK_GRAPH_TIE_H_
