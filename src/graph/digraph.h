// Signed directed multigraphs. Both the program graph G(Π) (predicate nodes)
// and the live part of the ground graph G(Π, Δ) (atom + rule nodes) are
// represented with this structure when running graph algorithms: SCC,
// condensation, tie checking, odd-cycle extraction.
//
// Parallel edges with different signs are meaningful (a predicate may occur
// both positively and negatively in bodies of rules with the same head), so
// this is a true multigraph: edges are first-class, identified by dense ids.
#ifndef TIEBREAK_GRAPH_DIGRAPH_H_
#define TIEBREAK_GRAPH_DIGRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/logging.h"

namespace tiebreak {

/// One directed edge; `negative` carries the sign (true = negative edge).
struct SignedEdge {
  int32_t from = 0;
  int32_t to = 0;
  bool negative = false;
};

/// A signed directed multigraph over dense node ids [0, num_nodes).
///
/// Usage: add nodes and edges, call Finalize(), then query adjacency.
/// Finalize() builds CSR out/in indexes; adding edges afterwards is a CHECK
/// failure. All algorithm entry points (scc.h, tie.h) require a finalized
/// graph.
class SignedDigraph {
 public:
  /// Creates a graph with `num_nodes` isolated nodes.
  explicit SignedDigraph(int32_t num_nodes = 0) : num_nodes_(num_nodes) {
    TIEBREAK_CHECK_GE(num_nodes, 0);
  }

  /// Adds an isolated node and returns its id.
  int32_t AddNode() {
    TIEBREAK_CHECK(!finalized_) << "AddNode after Finalize";
    return num_nodes_++;
  }

  /// Adds an edge and returns its id. Self-loops and parallel edges allowed.
  int32_t AddEdge(int32_t from, int32_t to, bool negative) {
    TIEBREAK_CHECK(!finalized_) << "AddEdge after Finalize";
    TIEBREAK_CHECK_GE(from, 0);
    TIEBREAK_CHECK_LT(from, num_nodes_);
    TIEBREAK_CHECK_GE(to, 0);
    TIEBREAK_CHECK_LT(to, num_nodes_);
    edges_.push_back(SignedEdge{from, to, negative});
    return static_cast<int32_t>(edges_.size()) - 1;
  }

  /// Builds the CSR adjacency indexes. Idempotent.
  void Finalize();

  int32_t num_nodes() const { return num_nodes_; }
  int32_t num_edges() const { return static_cast<int32_t>(edges_.size()); }
  bool finalized() const { return finalized_; }

  const SignedEdge& edge(int32_t e) const {
    TIEBREAK_CHECK_GE(e, 0);
    TIEBREAK_CHECK_LT(e, num_edges());
    return edges_[e];
  }

  /// Ids of edges leaving `v`. Requires Finalize().
  std::span<const int32_t> OutEdges(int32_t v) const {
    TIEBREAK_CHECK(finalized_);
    return {out_edge_ids_.data() + out_offsets_[v],
            out_edge_ids_.data() + out_offsets_[v + 1]};
  }

  /// Ids of edges entering `v`. Requires Finalize().
  std::span<const int32_t> InEdges(int32_t v) const {
    TIEBREAK_CHECK(finalized_);
    return {in_edge_ids_.data() + in_offsets_[v],
            in_edge_ids_.data() + in_offsets_[v + 1]};
  }

  /// Number of negative edges (handy for generators and stats).
  int32_t CountNegativeEdges() const;

 private:
  int32_t num_nodes_ = 0;
  bool finalized_ = false;
  std::vector<SignedEdge> edges_;
  std::vector<int32_t> out_offsets_, out_edge_ids_;
  std::vector<int32_t> in_offsets_, in_edge_ids_;
};

}  // namespace tiebreak

#endif  // TIEBREAK_GRAPH_DIGRAPH_H_
