#include "graph/tie.h"

#include <algorithm>
#include <unordered_map>

namespace tiebreak {

namespace {

// BFS over the internal edges of one SCC, recording the incoming tree edge
// of every member and its sign parity from the root (= members.front()).
struct SccBfsTree {
  std::unordered_map<int32_t, int32_t> local_index;  // node -> members pos
  std::vector<int32_t> parent_edge;  // members pos -> edge id (-1 at root)
  std::vector<char> parity;          // members pos -> # negatives mod 2
};

SccBfsTree BuildSccBfsTree(const SignedDigraph& graph,
                           const std::vector<int32_t>& members,
                           const std::vector<int32_t>& component_of,
                           int32_t comp_id) {
  SccBfsTree tree;
  tree.local_index.reserve(members.size() * 2);
  for (size_t i = 0; i < members.size(); ++i) {
    tree.local_index.emplace(members[i], static_cast<int32_t>(i));
  }
  tree.parent_edge.assign(members.size(), -1);
  tree.parity.assign(members.size(), 0);
  std::vector<char> visited(members.size(), 0);
  std::vector<int32_t> queue;
  queue.push_back(members.front());
  visited[tree.local_index.at(members.front())] = 1;
  for (size_t head = 0; head < queue.size(); ++head) {
    const int32_t v = queue[head];
    const int32_t v_local = tree.local_index.at(v);
    for (int32_t e : graph.OutEdges(v)) {
      const SignedEdge& edge = graph.edge(e);
      if (component_of[edge.to] != comp_id) continue;
      const int32_t w_local = tree.local_index.at(edge.to);
      if (visited[w_local]) continue;
      visited[w_local] = 1;
      tree.parent_edge[w_local] = e;
      tree.parity[w_local] =
          static_cast<char>(tree.parity[v_local] ^ (edge.negative ? 1 : 0));
      queue.push_back(edge.to);
    }
  }
  // Strong connectivity of the component guarantees full coverage.
  for (char v : visited) TIEBREAK_CHECK(v) << "SCC not strongly connected";
  return tree;
}

// Simple BFS path (edge ids) from src to dst within one SCC; empty when
// src == dst. Strong connectivity guarantees existence.
std::vector<int32_t> BfsPathInScc(const SignedDigraph& graph,
                                  const std::vector<int32_t>& component_of,
                                  int32_t comp_id, int32_t src, int32_t dst) {
  if (src == dst) return {};
  std::unordered_map<int32_t, int32_t> parent_edge;  // node -> incoming edge
  std::vector<int32_t> queue{src};
  parent_edge.emplace(src, -1);
  for (size_t head = 0; head < queue.size(); ++head) {
    const int32_t v = queue[head];
    for (int32_t e : graph.OutEdges(v)) {
      const SignedEdge& edge = graph.edge(e);
      if (component_of[edge.to] != comp_id) continue;
      if (parent_edge.contains(edge.to)) continue;
      parent_edge.emplace(edge.to, e);
      if (edge.to == dst) {
        std::vector<int32_t> path;
        int32_t cursor = dst;
        while (cursor != src) {
          const int32_t pe = parent_edge.at(cursor);
          path.push_back(pe);
          cursor = graph.edge(pe).from;
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      queue.push_back(edge.to);
    }
  }
  TIEBREAK_CHECK(false) << "no path inside SCC: component not strongly "
                           "connected";
  return {};
}

// Tree path root -> node as edge ids.
std::vector<int32_t> TreePath(const SignedDigraph& graph,
                              const SccBfsTree& tree, int32_t node) {
  std::vector<int32_t> path;
  int32_t local = tree.local_index.at(node);
  while (tree.parent_edge[local] != -1) {
    const int32_t e = tree.parent_edge[local];
    path.push_back(e);
    local = tree.local_index.at(graph.edge(e).from);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

int WalkParity(const SignedDigraph& graph, const std::vector<int32_t>& walk) {
  int parity = 0;
  for (int32_t e : walk) parity ^= graph.edge(e).negative ? 1 : 0;
  return parity;
}

// Decomposes a closed walk (consecutive edge ids, start node == end node)
// into simple cycles and returns one with odd negative-edge parity. The
// caller guarantees the whole walk is odd, so an odd simple cycle exists.
std::vector<int32_t> ExtractOddSimpleCycle(const SignedDigraph& graph,
                                           const std::vector<int32_t>& walk) {
  TIEBREAK_CHECK(!walk.empty());
  struct Entry {
    int32_t node;
    int32_t incoming_edge;  // -1 for the initial node
  };
  std::vector<Entry> stack;
  std::unordered_map<int32_t, int32_t> position;  // node -> stack index
  const int32_t start = graph.edge(walk.front()).from;
  stack.push_back(Entry{start, -1});
  position.emplace(start, 0);

  for (int32_t e : walk) {
    const int32_t w = graph.edge(e).to;
    auto it = position.find(w);
    if (it == position.end()) {
      position.emplace(w, static_cast<int32_t>(stack.size()));
      stack.push_back(Entry{w, e});
      continue;
    }
    // Closing a simple cycle: edges of stack entries above position, plus e.
    const int32_t base = it->second;
    std::vector<int32_t> cycle;
    for (size_t i = base + 1; i < stack.size(); ++i) {
      cycle.push_back(stack[i].incoming_edge);
    }
    cycle.push_back(e);
    if (WalkParity(graph, cycle) == 1) return cycle;
    // Even cycle: discard it and keep walking from w (already at `base`).
    while (static_cast<int32_t>(stack.size()) > base + 1) {
      position.erase(stack.back().node);
      stack.pop_back();
    }
  }
  TIEBREAK_CHECK(false) << "odd closed walk contained no odd simple cycle";
  return {};
}

}  // namespace

TieCheckResult CheckTie(const SignedDigraph& graph,
                        const std::vector<int32_t>& members,
                        const std::vector<int32_t>& component_of,
                        int32_t comp_id) {
  TIEBREAK_CHECK(graph.finalized());
  TIEBREAK_CHECK(!members.empty());
  const SccBfsTree tree =
      BuildSccBfsTree(graph, members, component_of, comp_id);
  TieCheckResult result;
  result.side.assign(members.size(), 0);
  for (size_t i = 0; i < members.size(); ++i) {
    result.side[i] = tree.parity[tree.local_index.at(members[i])];
  }
  // Verify every internal edge against the parity partition (Lemma 1).
  for (int32_t v : members) {
    const int32_t v_local = tree.local_index.at(v);
    for (int32_t e : graph.OutEdges(v)) {
      const SignedEdge& edge = graph.edge(e);
      if (component_of[edge.to] != comp_id) continue;
      const int32_t w_local = tree.local_index.at(edge.to);
      const char expected = static_cast<char>(tree.parity[v_local] ^
                                              (edge.negative ? 1 : 0));
      if (tree.parity[w_local] != expected) {
        result.is_tie = false;
        result.violating_edge = e;
        return result;
      }
    }
  }
  result.is_tie = true;
  return result;
}

bool HasOddCycle(const SignedDigraph& graph) {
  const SccResult scc = ComputeScc(graph);
  for (int32_t comp = 0; comp < scc.num_components; ++comp) {
    if (!CheckTie(graph, scc.members[comp], scc.component, comp).is_tie) {
      return true;
    }
  }
  return false;
}

std::vector<int32_t> FindOddCycle(const SignedDigraph& graph) {
  const SccResult scc = ComputeScc(graph);
  for (int32_t comp = 0; comp < scc.num_components; ++comp) {
    const auto& members = scc.members[comp];
    const TieCheckResult check =
        CheckTie(graph, members, scc.component, comp);
    if (check.is_tie) continue;

    // Lemma 1's refutation: the two root->w walks (via the tree, and via the
    // tree to z plus the violating edge) have different parities, so gluing
    // either onto a w->root return path yields one odd closed walk.
    const SccBfsTree tree = BuildSccBfsTree(graph, members, scc.component,
                                            comp);
    const SignedEdge& bad = graph.edge(check.violating_edge);
    std::vector<int32_t> walk_via_edge = TreePath(graph, tree, bad.from);
    walk_via_edge.push_back(check.violating_edge);
    std::vector<int32_t> walk_via_tree = TreePath(graph, tree, bad.to);
    const std::vector<int32_t> back = BfsPathInScc(
        graph, scc.component, comp, bad.to, members.front());
    const int back_parity = WalkParity(graph, back);

    std::vector<int32_t> closed = (WalkParity(graph, walk_via_edge) ^
                                   back_parity) == 1
                                      ? std::move(walk_via_edge)
                                      : std::move(walk_via_tree);
    closed.insert(closed.end(), back.begin(), back.end());
    TIEBREAK_CHECK_EQ(WalkParity(graph, closed), 1);
    return ExtractOddSimpleCycle(graph, closed);
  }
  return {};
}

std::vector<int32_t> FindNegativeCycle(const SignedDigraph& graph) {
  const SccResult scc = ComputeScc(graph);
  for (int32_t e = 0; e < graph.num_edges(); ++e) {
    const SignedEdge& edge = graph.edge(e);
    if (!edge.negative) continue;
    if (scc.component[edge.from] != scc.component[edge.to]) continue;
    // Close the negative edge with a simple path back to its source.
    std::vector<int32_t> cycle{e};
    const std::vector<int32_t> back = BfsPathInScc(
        graph, scc.component, scc.component[edge.from], edge.to, edge.from);
    cycle.insert(cycle.end(), back.begin(), back.end());
    return cycle;
  }
  return {};
}

}  // namespace tiebreak
