// Relations for the bottom-up engine: column-major (SoA) tuple storage with
// incrementally-maintained probe indexes. The ground-graph machinery
// (ground/) is the paper-faithful semantic core; this engine is the
// performance substrate for evaluating *stratified* programs at scale
// (benchmarks, counter-machine trajectories, perfect-model cross-checks).
//
// Storage layout. Tuples live column-major (SoA) in one flat arena:
// column c occupies the contiguous block data_[c*capacity .. c*capacity +
// num_rows), addressed by dense row id. Insert appends one value to each
// column block — there is no per-tuple heap allocation, no
// vector-of-rows, and row ids are stable forever (rows are never moved or
// deleted; growing the arena re-lays the column blocks out but preserves
// ids). Column-major layout is what the vectorized join kernels in
// engine/evaluation.cc scan: a filter over one argument position touches
// exactly one contiguous array, and a block gather of a probe-key column
// is a sequential read.
//
// Deduplication. An open-addressing table (power-of-two capacity, linear
// probing, ≤50% load) maps a 64-bit tuple fingerprint — the packed tuple
// itself for arity ≤ 2 (ConstIds are nonnegative 31-bit values, so one or
// two of them pack injectively), an FNV hash beyond — to a row id.
// Candidate rows are confirmed against the columns. Slots hold only the
// 4-byte row id: the table is the one structure that scales with *rows*
// (probe-index slot tables scale with distinct keys), and keeping it
// 4 bytes/slot is what keeps million-row tables cache-resident — the
// column compare it forces per candidate lands in the far smaller arena.
// Slot placement mixes the fingerprint's high word and folds the low word
// in at a small odd stride (see MixSlot), so sequential derivation keys
// probe the table at a hardware-prefetchable stride while distinct groups
// spread uniformly. Batch paths (InsertBatch, InsertUniqueBulk) hash
// several tuples ahead and software-prefetch the slot lines before
// touching them, hiding the latency of out-of-cache tables.
//
// Probe indexes. A probe asks for all rows whose columns selected by a
// bit mask equal a pattern. Per distinct mask the relation materializes
// (lazily, on first probe) a hash index: an open-addressing table from the
// masked-column probe key (packed-exact for ≤ 2 masked columns, hashed
// beyond) to the head of an intrusive chain threaded through a per-index
// `next` array (next[row] = older row with the same key). The
// index-maintenance contract is *incremental*: Insert appends the new row
// to every materialized index in O(1) amortized — indexes are never
// invalidated and never rebuilt, so semi-naive delta rounds that
// interleave Insert and Probe on the same mask pay no rebuild cost and
// always observe previously inserted tuples. Probe iteration is therefore
// stable under concurrent inserts into the same relation: rows inserted
// mid-iteration prepend to chain heads already passed and become visible
// to the *next* probe (exactly the semantics fixpoint rounds need).
//
// Sorted (merge-join) indexes. For masks whose keys repeat heavily (long
// hash chains), the relation can additionally materialize a sorted-key
// index: (key-hash, row) pairs sorted by key, probed by binary search into
// a contiguous run — the sort-merge access path the evaluator selects when
// a mask's selectivity estimate crosses EngineOptions::merge_join_
// selectivity. Sorted indexes absorb appended rows by sorting the new tail
// and merging it in at the next probe (or at EnsureSortedIndex); see
// ProbeSorted for the invalidation contract.
//
// Thread safety. A Relation is not internally synchronized. The engine's
// parallel rounds follow a strict publish protocol: during a fan-out all
// shared relations are read-only (probe indexes and sorted indexes are
// pre-materialized via EnsureProbeIndex / EnsureSortedIndex, so Probe and
// ProbeSorted perform no lazy construction), and all mutation happens on
// the coordinating thread between fan-outs (Insert, BulkInsert, Clear).
#ifndef TIEBREAK_ENGINE_RELATION_H_
#define TIEBREAK_ENGINE_RELATION_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "lang/symbols.h"
#include "util/logging.h"

namespace tiebreak {

/// A set of same-arity tuples in column-major storage, with probe indexes.
/// Not internally synchronized — see the thread-safety section of the file
/// comment for the read-only fan-out / coordinated-mutation protocol.
class Relation {
 public:
  /// An empty relation of `arity` columns (arity 0 = propositions).
  explicit Relation(int32_t arity) : arity_(arity) {
    TIEBREAK_CHECK_GE(arity, 0);
  }

  /// Number of columns per tuple.
  int32_t arity() const { return arity_; }
  /// Number of stored (distinct) tuples.
  int64_t size() const { return num_rows_; }
  /// True iff no tuple is stored.
  bool empty() const { return num_rows_ == 0; }

  /// Inserts the tuple at `values` (arity() consecutive ids); returns true
  /// when it was new. Appends to all materialized probe indexes. The
  /// two-argument form takes a precomputed TupleFingerprint so hot paths
  /// that both Contains and Insert the same tuple hash it once. Mutation:
  /// requires exclusive access (no concurrent reads or writes).
  bool Insert(const ConstId* values) {
    return Insert(values, TupleFingerprint(values));
  }
  bool Insert(const ConstId* values, uint64_t fingerprint);
  bool Insert(const Tuple& tuple) {
    TIEBREAK_CHECK_EQ(static_cast<int32_t>(tuple.size()), arity_);
    return Insert(tuple.data());
  }

  /// True iff the tuple at `values` is present. Pure read; safe to call
  /// concurrently with other reads (but not with mutation).
  bool Contains(const ConstId* values) const {
    return FindRow(values, TupleFingerprint(values)) >= 0;
  }
  bool Contains(const ConstId* values, uint64_t fingerprint) const {
    return FindRow(values, fingerprint) >= 0;
  }
  bool Contains(const Tuple& tuple) const {
    TIEBREAK_CHECK_EQ(static_cast<int32_t>(tuple.size()), arity_);
    return Contains(tuple.data());
  }

  /// The dedupe hash of the arity() ids at `values` (relation-independent
  /// apart from the arity).
  uint64_t TupleFingerprint(const ConstId* values) const {
    return FingerprintOf(values, arity_);
  }

  /// Prefetches the dedupe slot line for `fingerprint`: batch inserters
  /// hash a few tuples ahead and prefetch before probing. Advisory only.
  void PrefetchDedupe(uint64_t fingerprint) const {
    if (!dedupe_.empty()) {
      __builtin_prefetch(&dedupe_[MixSlot(fingerprint) & (dedupe_.size() - 1)]);
    }
  }

  /// Pointer to column `column`'s contiguous values (one per row). Valid
  /// until the next insert into this relation (appends may regrow the
  /// arena).
  const ConstId* ColumnData(int32_t column) const {
    return data_.data() + static_cast<size_t>(column) * capacity_;
  }
  /// Value of column `column` in row `row`.
  ConstId At(int32_t row, int32_t column) const {
    return data_[static_cast<size_t>(column) * capacity_ + row];
  }
  /// Gathers row `row` into `out` (arity() consecutive ids).
  void CopyRow(int32_t row, ConstId* out) const {
    for (int32_t c = 0; c < arity_; ++c) out[c] = At(row, c);
  }
  /// Materializes row `row` as an owned Tuple (convenience; allocates).
  Tuple TupleAt(int32_t row) const {
    Tuple tuple(arity_);
    CopyRow(row, tuple.data());
    return tuple;
  }

  /// Drops all rows and indexes but keeps allocated capacity (for reusing
  /// per-worker staging relations across fixpoint rounds).
  void Clear();

  /// Pre-sizes the columns and dedupe table for `num_rows` total rows (bulk
  /// EDB loads know their size up front).
  void Reserve(int64_t num_rows);

  /// Materializes the probe index for `mask` if it does not exist yet.
  /// Parallel evaluation calls this for every mask a compiled plan probes
  /// *before* fanning out, so that concurrent Probe() calls are pure reads
  /// (lazy materialization inside Probe would race).
  void EnsureProbeIndex(uint32_t mask) const { EnsureIndex(mask); }

  /// Bulk-appends every tuple of `staged` (same arity) that is not already
  /// present; returns the number of new rows. This is the staged-publish
  /// half of the parallel round barrier: the columns and dedupe table are
  /// extended in one scan over `staged` (each staged row is re-checked
  /// against this relation's fingerprint table — the stage was deduped
  /// against the published state when it was built, so this is the second
  /// membership check each surviving tuple pays, the one that catches
  /// cross-worker duplicates), then each materialized probe index is
  /// extended once with all new rows (one pass per index *per call*; a
  /// round that merges several worker stages performs one pass per stage).
  /// The new rows land contiguously at the end of the columns (their row
  /// range is [size-before, size-after)). Probe ranges opened before the
  /// publish remain valid and do not observe the new rows; ranges opened
  /// after observe all of them.
  int64_t BulkInsert(const Relation& staged);

  /// Appends `count` rows given row-major at `rows` (count × arity ids)
  /// under the guarantee that they are pairwise distinct AND none is
  /// already present — the caller owns that contract (e.g. loading from a
  /// deduplicated sorted set into an empty or disjoint relation). Skips
  /// all membership verification and pipelines the fingerprint-table
  /// stores behind software prefetch; ~2x faster than per-tuple Insert on
  /// million-row loads. Violating the uniqueness contract silently breaks
  /// set semantics — there is no cheap way to detect it here. Mutation:
  /// exclusive access required.
  void InsertUniqueBulk(const ConstId* rows, int64_t count);

  /// Deduplicating batch insert of `count` row-major rows: fingerprints are
  /// computed and slot lines prefetched a few rows ahead, then each row is
  /// inserted exactly like Insert(). Returns the number of new rows.
  /// Derived-tuple sinks buffer a block of head tuples and flush through
  /// this to hide dedupe-table DRAM latency.
  int64_t InsertBatch(const ConstId* rows, int64_t count);

  /// Lazy range over the row ids matching a probe; see Probe().
  class MatchRange {
   public:
    class iterator {
     public:
      int32_t operator*() const { return row_; }
      iterator& operator++() {
        row_ = relation_->indexes_[index_pos_].next[row_];
        return *this;
      }
      bool operator!=(const iterator& other) const {
        return row_ != other.row_;
      }

     private:
      friend class MatchRange;
      iterator(const Relation* relation, int32_t index_pos, int32_t row)
          : relation_(relation), index_pos_(index_pos), row_(row) {}
      // Chain links are re-fetched through the relation on every step, so
      // iteration stays valid when inserts grow the index mid-walk.
      const Relation* relation_;
      int32_t index_pos_;
      int32_t row_;
    };

    iterator begin() const { return iterator(relation_, index_pos_, head_); }
    iterator end() const { return iterator(relation_, index_pos_, -1); }
    bool empty() const { return head_ < 0; }

   private:
    friend class Relation;
    MatchRange(const Relation* relation, int32_t index_pos, int32_t head)
        : relation_(relation), index_pos_(index_pos), head_(head) {}
    const Relation* relation_;
    int32_t index_pos_;
    int32_t head_;
  };

  /// Row ids of tuples whose positions in `mask` (bit i = column i bound)
  /// equal the corresponding entries of `pattern` (unbound entries of
  /// `pattern` are ignored). Rows sharing the 64-bit masked-column hash are
  /// chained together, so callers must verify candidate rows against the
  /// pattern (hash collisions are astronomically rare but possible).
  /// Iterates newest-first; rows inserted after this call are not seen by
  /// the returned range.
  MatchRange Probe(uint32_t mask, const ConstId* pattern) const;
  MatchRange Probe(uint32_t mask, const Tuple& pattern) const {
    TIEBREAK_CHECK_EQ(static_cast<int32_t>(pattern.size()), arity_);
    return Probe(mask, pattern.data());
  }

  /// Stable handle to the materialized probe index for one mask, for the
  /// vectorized probe loop: resolve the handle once per block instead of
  /// searching the index list per row. Handles stay valid across inserts
  /// (positions in the index list never move).
  struct ProbeRef {
    int32_t index_pos = -1;
  };
  /// Materializes (if needed) and returns the handle for `mask`.
  ProbeRef ProbeRefFor(uint32_t mask) const {
    return ProbeRef{
        static_cast<int32_t>(&EnsureIndex(mask) - indexes_.data())};
  }
  /// The probe key of `pattern` under `mask` — the same key the index
  /// buckets rows by (packed-exact for ≤ 2 masked columns), exposed so
  /// batch kernels can compute several keys ahead of the probes that
  /// consume them.
  uint64_t ProbeKey(uint32_t mask, const ConstId* pattern) const {
    return ProbeKeyOf(mask, pattern);
  }
  /// Prefetches the slot line `key` maps to in `ref`'s index.
  void PrefetchProbe(ProbeRef ref, uint64_t key) const {
    const ProbeIndex& index = indexes_[ref.index_pos];
    if (!index.slots.empty()) {
      __builtin_prefetch(&index.slots[MixSlot(key) & (index.slots.size() - 1)]);
    }
  }
  /// Probe through a pre-resolved handle with a precomputed key (`key`
  /// must equal ProbeKey(mask, pattern) for the handle's mask). Same
  /// contract as Probe().
  MatchRange ProbeHashed(ProbeRef ref, uint64_t key) const;
  /// Head row of the chain `key` maps to in `ref`'s index (-1 = no match):
  /// ProbeHashed minus the range object, for kernels that walk chains
  /// manually with NextInChain.
  int32_t ProbeChainHead(ProbeRef ref, uint64_t key) const;
  /// The next-older row in `row`'s chain of `ref`'s index (-1 = end).
  /// Always reads the current chain state, so walks stay valid while the
  /// relation grows (new rows prepend at heads already passed).
  int32_t NextInChain(ProbeRef ref, int32_t row) const {
    return indexes_[ref.index_pos].next[row];
  }
  /// Prefetches row `row`'s chain link and column entries — chain walks
  /// hide the pointer-chase latency by prefetching one candidate ahead.
  void PrefetchChainRow(ProbeRef ref, int32_t row) const {
    __builtin_prefetch(&indexes_[ref.index_pos].next[row]);
    for (int32_t c = 0; c < arity_; ++c) {
      __builtin_prefetch(&data_[static_cast<size_t>(c) * capacity_ + row]);
    }
  }
  /// True when probe-key equality under `mask` already proves that the
  /// masked columns match the pattern (≤ 2 masked columns pack exactly):
  /// chain candidates then need no masked-column verification.
  static bool ExactProbeKeys(uint32_t mask) {
    return __builtin_popcount(mask) <= 2;
  }

  /// A contiguous run of row ids sharing one probe key inside a sorted
  /// index; candidates still need pattern verification (keys wider than
  /// two columns can collide), exactly like MatchRange chains.
  struct SortedRun {
    const int32_t* begin_ = nullptr;
    const int32_t* end_ = nullptr;
    const int32_t* begin() const { return begin_; }
    const int32_t* end() const { return end_; }
    bool empty() const { return begin_ == end_; }
  };

  /// Materializes (or refreshes to cover all current rows) the sorted-key
  /// index for `mask`. Parallel evaluation calls this before fanning out so
  /// worker-side ProbeSorted calls are pure reads.
  void EnsureSortedIndex(uint32_t mask) const;

  /// Binary-searches the sorted-key index for rows matching `pattern`
  /// under `mask`. Rows appended since the last refresh are absorbed first
  /// (sort the tail, merge) — which invalidates SortedRuns handed out
  /// earlier, so callers must not hold a run across a ProbeSorted on the
  /// same (relation, mask) after the relation grew. The evaluator
  /// guarantees this by never selecting the merge path for a relation the
  /// running rule inserts into (see JoinStep::merge in evaluation.cc).
  /// Run order is ascending row id.
  SortedRun ProbeSorted(uint32_t mask, const ConstId* pattern) const;

  /// Number of distinct probe keys under `mask`, when some index for
  /// `mask` has already been materialized; -1 when unknown. The plan
  /// compiler's selectivity estimate (distinct/size is the fraction of
  /// rows one key selects on average — crossing below
  /// EngineOptions::merge_join_selectivity switches the step to a
  /// sort-merge join).
  int64_t DistinctKeysEstimate(uint32_t mask) const;

 private:
  // One open-addressing slot: the full 64-bit key (probe key or tuple
  // fingerprint) packed next to the row it heads, so one probe touches one
  // cache line. row < 0 = empty (key is then meaningless).
  struct Slot {
    uint64_t key = 0;
    int32_t row = -1;
  };

  // One materialized per-mask hash index: open-addressing slots mapping a
  // masked-column probe key to the newest row with that key, plus the
  // intrusive chain (next[row] = next-older row with the same key, -1 at
  // the end).
  struct ProbeIndex {
    uint32_t mask = 0;
    std::vector<Slot> slots;     // slot.row = newest row with slot.key
    std::vector<int32_t> next;   // chain links, indexed by row id
    int32_t used_slots = 0;
  };

  // One materialized per-mask sorted-key index: parallel arrays of probe
  // key and row id, sorted by (key, row) and covering rows
  // [0, built_rows). Rows appended later form an unindexed tail that the
  // next refresh sorts and merges in. Parallel arrays (not pairs) so the
  // binary searches scan a dense key array and SortedRun can hand out a
  // contiguous row-id span.
  struct SortedIndex {
    uint32_t mask = 0;
    std::vector<uint64_t> keys;
    std::vector<int32_t> rows;
    int64_t built_rows = 0;
    int64_t distinct_keys = 0;
  };

  // Maps a fingerprint or probe key to a slot-table position. The high
  // word gets a full splitmix64 avalanche; the low word — the fastest-
  // varying column of a packed key — is folded in with a small odd
  // stride. Fixpoint rounds derive tuples whose last column counts up or
  // down, so their dedupe probes walk the table at a constant ±431-slot
  // stride that the hardware stride prefetcher covers (measured ~1.5x on
  // insert-heavy rounds versus full avalanche). The stride is odd (a
  // bijection mod the power-of-two capacity, so distribution is not
  // weakened), and small enough (~1.7KB) for stride prefetchers to track.
  // Raw low bits without the multiplier would be faster still but
  // coalesce dense key ranges into giant linear-probing clusters; the
  // stride keeps overlapping groups interleaved.
  static uint64_t MixSlot(uint64_t x) {
    uint64_t high = (x >> 32) + 0x9E3779B97F4A7C15ULL;
    high = (high ^ (high >> 30)) * 0xBF58476D1CE4E5B9ULL;
    high = (high ^ (high >> 27)) * 0x94D049BB133111EBULL;
    return (high ^ (high >> 31)) + (x & 0xFFFFFFFFULL) * 431;
  }
  int32_t FindRow(const ConstId* values, uint64_t fingerprint) const;
  bool RowEquals(int32_t row, const ConstId* values) const {
    for (int32_t c = 0; c < arity_; ++c) {
      if (At(row, c) != values[c]) return false;
    }
    return true;
  }
  void GrowArena(int64_t min_capacity);
  void AppendRow(const ConstId* values) {
    if (num_rows_ == capacity_) GrowArena(num_rows_ + 1);
    for (int32_t c = 0; c < arity_; ++c) {
      data_[static_cast<size_t>(c) * capacity_ + num_rows_] = values[c];
    }
  }
  void GrowDedupe();
  void RehashDedupe(size_t new_capacity);
  ProbeIndex& EnsureIndex(uint32_t mask) const;
  void AppendToIndex(ProbeIndex* index, int32_t row) const;
  static void GrowIndexSlots(ProbeIndex* index);
  SortedIndex& EnsureSorted(uint32_t mask) const;
  void RefreshSorted(SortedIndex* sorted) const;
  uint64_t RowProbeKey(uint32_t mask, int32_t row) const;
  uint64_t FingerprintOf(const ConstId* values, int32_t count) const;
  uint64_t ProbeKeyOf(uint32_t mask, const ConstId* values) const;

  int32_t arity_;
  int32_t num_rows_ = 0;
  // Rows the arena can hold before the next re-layout.
  int64_t capacity_ = 0;
  // Column-major arena: column c of row r is data_[c*capacity_ + r].
  std::vector<ConstId> data_;
  // Open-addressing dedupe table over tuple fingerprints; entries are row
  // ids, -1 = empty. Capacity is a power of two, load factor ≤ 1/2.
  // 4 bytes per slot on purpose — see the file comment.
  std::vector<int32_t> dedupe_;
  // One hash index per distinct probed mask (typically ≤ a handful).
  // Positions are stable handles: MatchRange and ProbeRef refer to indexes
  // by position so that growing this vector never invalidates them.
  mutable std::vector<ProbeIndex> indexes_;
  // Sorted-key indexes for masks probed via the merge path.
  mutable std::vector<SortedIndex> sorted_indexes_;
};

}  // namespace tiebreak

#endif  // TIEBREAK_ENGINE_RELATION_H_
