// Relations for the bottom-up engine: deduplicated tuple sets with
// on-demand hash indexes per bound-column mask. The ground-graph machinery
// (ground/) is the paper-faithful semantic core; this engine is the
// performance substrate for evaluating *stratified* programs at scale
// (benchmarks, counter-machine trajectories, perfect-model cross-checks).
#ifndef TIEBREAK_ENGINE_RELATION_H_
#define TIEBREAK_ENGINE_RELATION_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "lang/symbols.h"
#include "util/logging.h"

namespace tiebreak {

/// A set of same-arity tuples with probe indexes.
class Relation {
 public:
  explicit Relation(int32_t arity) : arity_(arity) {
    TIEBREAK_CHECK_GE(arity, 0);
  }

  int32_t arity() const { return arity_; }
  int64_t size() const { return static_cast<int64_t>(tuples_.size()); }
  bool empty() const { return tuples_.empty(); }

  /// Inserts a tuple; returns true when it was new. Invalidates indexes.
  bool Insert(const Tuple& tuple);

  bool Contains(const Tuple& tuple) const {
    return dedupe_.contains(Fingerprint(tuple)) && ContainsExact(tuple);
  }

  const std::vector<Tuple>& tuples() const { return tuples_; }

  /// Indices of tuples whose positions in `mask` (bit i = column i bound)
  /// equal the corresponding entries of `pattern` (unbound entries of
  /// `pattern` are ignored). Uses a cached per-mask hash index.
  const std::vector<int32_t>& Probe(uint32_t mask, const Tuple& pattern) const;

 private:
  bool ContainsExact(const Tuple& tuple) const;
  static uint64_t Fingerprint(const Tuple& tuple);
  static uint64_t KeyHash(uint32_t mask, const Tuple& tuple);

  int32_t arity_;
  std::vector<Tuple> tuples_;
  // Fingerprint multiset for O(1) membership (collisions re-checked).
  std::unordered_map<uint64_t, std::vector<int32_t>> dedupe_;
  // mask -> (key hash -> tuple indices). Rebuilt lazily after inserts.
  mutable std::unordered_map<uint32_t,
                             std::unordered_map<uint64_t, std::vector<int32_t>>>
      indexes_;
  mutable bool indexes_dirty_ = false;
};

}  // namespace tiebreak

#endif  // TIEBREAK_ENGINE_RELATION_H_
