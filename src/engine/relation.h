// Relations for the bottom-up engine: flat columnar tuple storage with
// incrementally-maintained probe indexes. The ground-graph machinery
// (ground/) is the paper-faithful semantic core; this engine is the
// performance substrate for evaluating *stratified* programs at scale
// (benchmarks, counter-machine trajectories, perfect-model cross-checks).
//
// Storage layout. All tuples live in one contiguous arena: a single
// std::vector<ConstId> strided by arity, addressed by dense row id
// (row r occupies data_[r*arity .. r*arity+arity)). Insert appends to the
// arena — there is no per-tuple heap allocation, no vector-of-vectors, and
// row ids are stable forever (rows are never moved or deleted).
//
// Deduplication. An open-addressing fingerprint table (power-of-two
// capacity, linear probing, ≤50% load) maps a 64-bit FNV fingerprint of
// the tuple to its row id; collisions re-check the arena bytes. No bucket
// vectors anywhere.
//
// Probe indexes. A probe asks for all rows whose columns selected by a
// bit mask equal a pattern. Per distinct mask the relation materializes
// (lazily, on first probe) a hash index: an open-addressing table from the
// masked-column hash to the head of an intrusive chain threaded through a
// per-index `next` array (next[row] = older row with the same key). The
// index-maintenance contract is *incremental*: Insert appends the new row
// to every materialized index in O(1) amortized — indexes are never
// invalidated and never rebuilt, so semi-naive delta rounds that
// interleave Insert and Probe on the same mask pay no rebuild cost and
// always observe previously inserted tuples. Probe iteration is therefore
// stable under concurrent inserts into the same relation: rows inserted
// mid-iteration prepend to chain heads already passed and become visible
// to the *next* probe (exactly the semantics fixpoint rounds need).
#ifndef TIEBREAK_ENGINE_RELATION_H_
#define TIEBREAK_ENGINE_RELATION_H_

#include <cstdint>
#include <vector>

#include "lang/symbols.h"
#include "util/logging.h"

namespace tiebreak {

/// A set of same-arity tuples in a flat arena, with probe indexes.
class Relation {
 public:
  explicit Relation(int32_t arity) : arity_(arity) {
    TIEBREAK_CHECK_GE(arity, 0);
  }

  int32_t arity() const { return arity_; }
  int64_t size() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  /// Inserts the tuple at `values` (arity() consecutive ids); returns true
  /// when it was new. Appends to all materialized probe indexes. The
  /// two-argument form takes a precomputed TupleFingerprint so hot paths
  /// that both Contains and Insert the same tuple hash it once.
  bool Insert(const ConstId* values) {
    return Insert(values, TupleFingerprint(values));
  }
  bool Insert(const ConstId* values, uint64_t fingerprint);
  bool Insert(const Tuple& tuple) {
    TIEBREAK_CHECK_EQ(static_cast<int32_t>(tuple.size()), arity_);
    return Insert(tuple.data());
  }

  bool Contains(const ConstId* values) const {
    return FindRow(values, TupleFingerprint(values)) >= 0;
  }
  bool Contains(const ConstId* values, uint64_t fingerprint) const {
    return FindRow(values, fingerprint) >= 0;
  }
  bool Contains(const Tuple& tuple) const {
    TIEBREAK_CHECK_EQ(static_cast<int32_t>(tuple.size()), arity_);
    return Contains(tuple.data());
  }

  /// The dedupe hash of the arity() ids at `values` (relation-independent
  /// apart from the arity).
  uint64_t TupleFingerprint(const ConstId* values) const {
    return FingerprintOf(values, arity_);
  }

  /// Pointer to row `row`'s arity() ids inside the arena.
  const ConstId* Row(int32_t row) const {
    return data_.data() + static_cast<size_t>(row) * arity_;
  }
  /// Materializes row `row` as an owned Tuple (convenience; allocates).
  Tuple TupleAt(int32_t row) const {
    return Tuple(Row(row), Row(row) + arity_);
  }

  /// Drops all rows and indexes but keeps allocated capacity (for reusing
  /// per-worker staging relations across fixpoint rounds).
  void Clear();

  /// Pre-sizes the arena and dedupe table for `num_rows` total rows (bulk
  /// EDB loads know their size up front).
  void Reserve(int64_t num_rows);

  /// Materializes the probe index for `mask` if it does not exist yet.
  /// Parallel evaluation calls this for every mask a compiled plan probes
  /// *before* fanning out, so that concurrent Probe() calls are pure reads
  /// (lazy materialization inside Probe would race).
  void EnsureProbeIndex(uint32_t mask) const { EnsureIndex(mask); }

  /// Bulk-appends every tuple of `staged` (same arity) that is not already
  /// present; returns the number of new rows. This is the staged-publish
  /// half of the parallel round barrier: the arena and dedupe table are
  /// extended in one scan over `staged`, then each materialized probe index
  /// is extended once with all new rows (one pass per index) instead of
  /// being touched per tuple. The new rows land contiguously at the end of
  /// the arena (their row range is [size-before, size-after)). Probe ranges
  /// opened before the publish remain valid and do not observe the new
  /// rows; ranges opened after observe all of them.
  int64_t BulkInsert(const Relation& staged);

  /// Lazy range over the row ids matching a probe; see Probe().
  class MatchRange {
   public:
    class iterator {
     public:
      int32_t operator*() const { return row_; }
      iterator& operator++() {
        row_ = relation_->indexes_[index_pos_].next[row_];
        return *this;
      }
      bool operator!=(const iterator& other) const {
        return row_ != other.row_;
      }

     private:
      friend class MatchRange;
      iterator(const Relation* relation, int32_t index_pos, int32_t row)
          : relation_(relation), index_pos_(index_pos), row_(row) {}
      // Chain links are re-fetched through the relation on every step, so
      // iteration stays valid when inserts grow the index mid-walk.
      const Relation* relation_;
      int32_t index_pos_;
      int32_t row_;
    };

    iterator begin() const { return iterator(relation_, index_pos_, head_); }
    iterator end() const { return iterator(relation_, index_pos_, -1); }
    bool empty() const { return head_ < 0; }

   private:
    friend class Relation;
    MatchRange(const Relation* relation, int32_t index_pos, int32_t head)
        : relation_(relation), index_pos_(index_pos), head_(head) {}
    const Relation* relation_;
    int32_t index_pos_;
    int32_t head_;
  };

  /// Row ids of tuples whose positions in `mask` (bit i = column i bound)
  /// equal the corresponding entries of `pattern` (unbound entries of
  /// `pattern` are ignored). Rows sharing the 64-bit masked-column hash are
  /// chained together, so callers must verify candidate rows against the
  /// pattern (hash collisions are astronomically rare but possible).
  /// Iterates newest-first; rows inserted after this call are not seen by
  /// the returned range.
  MatchRange Probe(uint32_t mask, const ConstId* pattern) const;
  MatchRange Probe(uint32_t mask, const Tuple& pattern) const {
    TIEBREAK_CHECK_EQ(static_cast<int32_t>(pattern.size()), arity_);
    return Probe(mask, pattern.data());
  }

 private:
  // One materialized per-mask hash index: open-addressing slots mapping a
  // masked-column hash to the newest row with that key, plus the intrusive
  // chain (next[row] = next-older row with the same key, -1 at the end).
  struct ProbeIndex {
    uint32_t mask = 0;
    std::vector<uint64_t> slot_keys;   // valid where slot_heads[i] >= 0
    std::vector<int32_t> slot_heads;   // -1 = empty slot
    std::vector<int32_t> next;         // chain links, indexed by row id
    int32_t used_slots = 0;
  };

  int32_t FindRow(const ConstId* values, uint64_t fingerprint) const;
  void GrowDedupe();
  void RehashDedupe(size_t new_capacity);
  ProbeIndex& EnsureIndex(uint32_t mask) const;
  void AppendToIndex(ProbeIndex* index, int32_t row) const;
  static void GrowIndexSlots(ProbeIndex* index);
  static uint64_t FingerprintOf(const ConstId* values, int32_t count);
  static uint64_t KeyHashOf(uint32_t mask, const ConstId* values);

  int32_t arity_;
  int32_t num_rows_ = 0;
  // The arena: row r = data_[r*arity_ .. (r+1)*arity_).
  std::vector<ConstId> data_;
  // Open-addressing dedupe table over tuple fingerprints; entries are row
  // ids, -1 = empty. Capacity is a power of two, load factor ≤ 1/2.
  std::vector<int32_t> dedupe_slots_;
  // One index per distinct probed mask (typically ≤ a handful). Positions
  // are stable handles: MatchRange refers to indexes by position so that
  // growing this vector never invalidates live iterators.
  mutable std::vector<ProbeIndex> indexes_;
};

}  // namespace tiebreak

#endif  // TIEBREAK_ENGINE_RELATION_H_
