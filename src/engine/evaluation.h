// Bottom-up evaluation of stratified Datalog¬ programs: per-stratum least
// fixpoints with negation-as-failure on fully-computed lower strata. Both
// naive and semi-naive (delta-driven) iteration are provided; they must
// agree (tested), and on stratified inputs they compute exactly the perfect
// model / well-founded model of the ground semantics (cross-checked against
// core/).
//
// Rules must be *safe* (range-restricted): every variable occurring in the
// head or in a negated body literal must also occur in some positive body
// literal. (The ground-graph semantics of core/ handles unsafe rules fine —
// the paper's program (1) is unsafe — but set-at-a-time evaluation needs
// safety; CheckSafety reports violations.)
//
// Performance contract:
//  * Relations store tuples in flat columnar arenas with incrementally
//    maintained probe indexes (see engine/relation.h).
//  * Semi-naive deltas are row ranges, not copies: relations only append,
//    with stable row ids, so "the tuples derived last round" is exactly
//    rows [begin, end) of the global relation. Fixpoint rounds maintain no
//    second tuple store — a delta-restricted probe filters by row id
//    (index chains are newest-first, i.e. descending), and a delta scan is
//    an arena slice.
//  * Each (rule, delta-literal) pair is compiled once into a flat join
//    plan — the delta literal outermost, the remaining literals reordered
//    by bound-argument selectivity — and cached for the rest of the
//    evaluation; the plan is recompiled only when some joined relation's
//    cardinality drifts past EngineOptions::plan_refresh_drift of its
//    compile-time snapshot, so steady-state fixpoint rounds spend zero
//    time in plan construction. A first step with an empty probe mask runs
//    as a direct descending arena scan and materializes no index.
//  * The inner join loop performs no heap allocation: probe patterns,
//    bindings and derived tuples live in reusable per-evaluator scratch,
//    and derived head tuples are handed to an internal FunctionView sink
//    as spans into that scratch.
//  * With num_threads > 1, each fixpoint round's independent
//    (rule, delta-literal) jobs are fanned out over a ThreadPool, and a
//    job whose plan starts with a direct scan is split further into row
//    shards — the data parallelism that covers the one-big-recursive-rule
//    shape (transitive closure) where rule-level parallelism alone is a
//    two-way split. During the fan-out all global relations are strictly
//    read-only (plans and probe indexes are pre-materialized), each worker
//    stages its derivations in a private per-predicate staging relation,
//    and at the round barrier the owning thread merges the stages with
//    Relation::BulkInsert (dedupe via the fingerprint table, arena append,
//    then one index-publish pass per probe index instead of per-tuple
//    maintenance) — which lands the new rows contiguously, making them the
//    next round's delta ranges for free.
//  * Parallel and serial evaluation produce the *identical* database (set
//    semantics: the least fixpoint is unique, and Database stores sorted
//    sets), enforced by the serial-vs-parallel agreement tests. Iteration
//    and rule-application counts may differ: the serial path lets later
//    jobs in a round see earlier jobs' derivations immediately, while the
//    parallel path publishes them at the barrier.
#ifndef TIEBREAK_ENGINE_EVALUATION_H_
#define TIEBREAK_ENGINE_EVALUATION_H_

#include <vector>

#include "engine/relation.h"
#include "lang/database.h"
#include "lang/program.h"
#include "util/status.h"

namespace tiebreak {

/// Returns OK iff every rule of `program` is range-restricted.
Status CheckSafety(const Program& program);

/// Evaluation knobs.
struct EngineOptions {
  /// Use semi-naive (delta) iteration; false = naive re-derivation.
  bool semi_naive = true;
  /// Abort with RESOURCE_EXHAUSTED beyond this many derived tuples.
  int64_t max_tuples = 50'000'000;
  /// Worker threads for rule-level parallelism inside each fixpoint round.
  /// 1 = the serial reference path (derivations visible immediately),
  /// 0 = std::thread::hardware_concurrency(), n > 1 = staged parallel
  /// evaluation with a barrier merge per round.
  int32_t num_threads = 1;
  /// Re-run a cached plan's selectivity reordering when some joined
  /// relation's size grew or shrank by this factor versus the snapshot
  /// taken at compile time (small sizes are floored so early rounds don't
  /// thrash). 0 = recompile on every use (the pre-cache behavior).
  int64_t plan_refresh_drift = 4;
};

/// Per-stratum timing breakdown (filled when stats are requested).
struct StratumStats {
  int32_t stratum = 0;
  int32_t iterations = 0;       // fixpoint rounds in this stratum
  int64_t tuples_derived = 0;   // new tuples this stratum contributed
  double seconds = 0;           // wall time of this stratum
  /// Busy-time utilization of the fan-out: sum of per-worker seconds spent
  /// inside rule evaluation divided by (wall seconds × threads). 1.0 means
  /// perfectly balanced workers; the serial path reports 1.0 by definition.
  double utilization = 1.0;
};

/// Statistics of one evaluation.
struct EngineStats {
  int64_t tuples_derived = 0;   // inserted (new) tuples
  int64_t rule_applications = 0;
  int32_t strata = 0;
  int32_t iterations = 0;  // total fixpoint rounds across strata
  int32_t threads_used = 0;     // effective thread count (>= 1)
  int64_t plans_compiled = 0;   // join-plan compilations (incl. refreshes)
  int64_t plan_cache_hits = 0;  // evaluations served by a cached plan
  std::vector<StratumStats> per_stratum;
};

/// Evaluates `program` on `database` (initial values for all relations; IDB
/// entries are allowed and participate, matching the paper's uniform
/// initialization). Fails with FAILED_PRECONDITION when the program is not
/// stratified and INVALID_ARGUMENT when a rule is unsafe. On success the
/// returned database holds the perfect model's relations (EDB copied
/// through).
Result<Database> EvaluateStratified(const Program& program,
                                    const Database& database,
                                    const EngineOptions& options = {},
                                    EngineStats* stats = nullptr);

}  // namespace tiebreak

#endif  // TIEBREAK_ENGINE_EVALUATION_H_
