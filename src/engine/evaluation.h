// Bottom-up evaluation of stratified Datalog¬ programs: per-stratum least
// fixpoints with negation-as-failure on fully-computed lower strata. Both
// naive and semi-naive (delta-driven) iteration are provided; they must
// agree (tested), and on stratified inputs they compute exactly the perfect
// model / well-founded model of the ground semantics (cross-checked against
// core/).
//
// Rules must be *safe* (range-restricted): every variable occurring in the
// head or in a negated body literal must also occur in some positive body
// literal. (The ground-graph semantics of core/ handles unsafe rules fine —
// the paper's program (1) is unsafe — but set-at-a-time evaluation needs
// safety; CheckSafety reports violations.)
//
// Performance contract:
//  * Relations store tuples column-major (one contiguous vector per column)
//    with incrementally maintained probe indexes (see engine/relation.h).
//  * Semi-naive deltas are row ranges, not copies: relations only append,
//    with stable row ids, so "the tuples derived last round" is exactly
//    rows [begin, end) of the global relation. Fixpoint rounds maintain no
//    second tuple store — a delta-restricted probe filters by row id
//    (index chains are newest-first, i.e. descending), and a delta scan is
//    a slice of the columns.
//  * Each (rule, delta-literal) pair is compiled once into a flat join
//    plan — the delta literal outermost, the remaining literals reordered
//    by bound-argument selectivity — and cached for the rest of the
//    evaluation; the plan is recompiled only when some joined relation's
//    cardinality drifts past EngineOptions::plan_refresh_drift of its
//    compile-time snapshot, so steady-state fixpoint rounds spend zero
//    time in plan construction. A first step with an empty probe mask runs
//    as a direct descending column scan and materializes no index.
//  * With JoinKernel::kVector (the default), a plan whose first step is a
//    direct scan executes batch-at-a-time: 64-row blocks of the scanned
//    columns are filtered into a selection bitmask (constant and
//    repeated-variable tests run as contiguous single-column scans), the
//    surviving rows' probe-key columns are gathered and hashed up front,
//    and the dedupe/index slot lines they will touch are software-
//    prefetched several keys ahead of the probes that consume them.
//    Derived head tuples from feedback-free plans (no join step reads the
//    relation the rule writes) are buffered and flushed through the same
//    prefetch-pipelined batch-insert path. JoinKernel::kRow is the
//    tuple-at-a-time reference; both kernels visit rows in the identical
//    order and produce identical statistics.
//  * A non-delta join step whose probe mask has a low selectivity estimate
//    (distinct keys / rows below EngineOptions::merge_join_selectivity —
//    i.e. long hash chains) and whose relation is an EDB predicate (static
//    during evaluation) is compiled as a sort-merge join: probes binary-
//    search a sorted-key index and scan a contiguous run instead of
//    chasing chain links. JoinKernel::kMerge forces this path on every
//    eligible step for ablation.
//  * The inner join loop performs no heap allocation: probe patterns,
//    bindings, selection blocks and derived tuples live in reusable
//    per-evaluator scratch, and derived head tuples are handed to an
//    internal FunctionView sink as spans into that scratch.
//  * With num_threads > 1, each fixpoint round's independent
//    (rule, delta-literal) jobs are fanned out over a ThreadPool, and a
//    job whose plan starts with a direct scan is split further into row
//    shards — the data parallelism that covers the one-big-recursive-rule
//    shape (transitive closure) where rule-level parallelism alone is a
//    two-way split. During the fan-out all global relations are strictly
//    read-only (plans, probe indexes and sorted indexes are
//    pre-materialized), each worker stages its derivations in a private
//    per-predicate staging relation, and at the round barrier the owning
//    thread merges the stages with Relation::BulkInsert (each staged row
//    is re-checked against the fingerprint table — the stage pre-filtered
//    against the published state, so publish is the second check, the one
//    that catches cross-worker duplicates — then every probe index is
//    extended once per merged stage) — which lands the new rows
//    contiguously, making them the next round's delta ranges for free.
//    The initial EDB load also goes through the pool: per-predicate loads
//    are independent and stream each database relation into its columns
//    via the uniqueness-exploiting bulk path.
//  * Parallel and serial evaluation produce the *identical* database (set
//    semantics: the least fixpoint is unique, and Database stores sorted
//    sets), enforced by the serial-vs-parallel agreement tests, and all
//    three kernels produce the identical database too (kernel-agreement
//    tests). Iteration and rule-application counts may differ between
//    serial and parallel: the serial path lets later jobs in a round see
//    earlier jobs' derivations immediately, while the parallel path
//    publishes them at the barrier.
#ifndef TIEBREAK_ENGINE_EVALUATION_H_
#define TIEBREAK_ENGINE_EVALUATION_H_

#include <cstdint>
#include <vector>

#include "engine/relation.h"
#include "lang/database.h"
#include "lang/program.h"
#include "util/span.h"
#include "util/status.h"

namespace tiebreak {

// Forward-declared; see util/execution_context.h.
class ExecutionContext;

/// Returns OK iff every rule of `program` is range-restricted.
Status CheckSafety(const Program& program);

/// Maximum predicate arity the relational engine evaluates (probe masks
/// are 32-bit column sets). EvaluateStratified rejects wider programs with
/// INVALID_ARGUMENT; the grounder plans around this cap.
inline constexpr int32_t kEngineMaxArity = 32;

/// Which join-kernel implementation the evaluator runs. All kernels compute
/// the identical least fixpoint; they differ only in the shape of the inner
/// loops (see the performance contract above).
enum class JoinKernel : uint8_t {
  /// Tuple-at-a-time reference loops (the pre-vectorization engine).
  kRow,
  /// Batch-at-a-time direct scans with columnar filters, block key hashing
  /// and slot prefetch; sort-merge joins chosen by selectivity estimate.
  kVector,
  /// Like kVector, but every eligible (EDB, non-delta) probe step is forced
  /// onto the sort-merge path — the ablation that isolates the merge-join
  /// contribution.
  kMerge,
};

/// Evaluation knobs.
struct EngineOptions {
  /// Use semi-naive (delta) iteration; false = naive re-derivation.
  bool semi_naive = true;
  /// Abort with RESOURCE_EXHAUSTED beyond this many derived tuples.
  int64_t max_tuples = 50'000'000;
  /// Worker threads for rule-level parallelism inside each fixpoint round.
  /// 1 = the serial reference path (derivations visible immediately),
  /// 0 = std::thread::hardware_concurrency(), n > 1 = staged parallel
  /// evaluation with a barrier merge per round.
  int32_t num_threads = 1;
  /// Re-run a cached plan's selectivity reordering when some joined
  /// relation's size grew or shrank by this factor versus the snapshot
  /// taken at compile time (small sizes are floored so early rounds don't
  /// thrash). 0 = recompile on every use (the pre-cache behavior).
  int64_t plan_refresh_drift = 4;
  /// Join-kernel implementation; see JoinKernel.
  JoinKernel kernel = JoinKernel::kVector;
  /// Selectivity threshold for the sort-merge path under kVector: a
  /// non-delta EDB probe step switches to a merge join when its mask's
  /// estimated distinct-key fraction (distinct keys / relation size)
  /// drops below this value, i.e. when the average hash chain would be
  /// longer than 1/threshold rows. 0 disables auto merge joins.
  double merge_join_selectivity = 0.05;
  /// Copy the EDB relations into the result database (the default; the
  /// result then holds the complete perfect model). Callers that only
  /// read derived relations — the grounder reads just its binding
  /// predicates — set this false to skip one full copy of a potentially
  /// million-tuple EDB; the result's EDB relations are then empty.
  bool materialize_edb = true;
  /// Resource governance for this evaluation (not owned; null = none).
  /// Checkpoints fire per 64-row kernel block and per fixpoint round;
  /// derived rows charge the byte budget at flush/merge barriers. On a
  /// trip the evaluation unwinds from the next round barrier and returns
  /// the context's Status (kResourceExhausted / kDeadlineExceeded /
  /// kCancelled) instead of a database. The context's step/byte charges
  /// and EngineOptions::max_tuples are independent limits; both apply.
  ExecutionContext* context = nullptr;
};

/// Per-stratum timing breakdown (filled when stats are requested).
struct StratumStats {
  int32_t stratum = 0;
  int32_t iterations = 0;       // fixpoint rounds in this stratum
  int64_t tuples_derived = 0;   // new tuples this stratum contributed
  double seconds = 0;           // wall time of this stratum
  /// Busy-time utilization of the fan-out: sum of per-worker seconds spent
  /// inside rule evaluation divided by (wall seconds × threads). 1.0 means
  /// perfectly balanced workers; the serial path reports 1.0 by definition.
  double utilization = 1.0;
};

/// Statistics of one evaluation.
struct EngineStats {
  int64_t tuples_derived = 0;   // inserted (new) tuples
  int64_t rule_applications = 0;
  int32_t strata = 0;
  int32_t iterations = 0;  // total fixpoint rounds across strata
  int32_t threads_used = 0;     // effective thread count (>= 1)
  int64_t plans_compiled = 0;   // join-plan compilations (incl. refreshes)
  int64_t plan_cache_hits = 0;  // evaluations served by a cached plan
  int64_t merge_join_steps = 0;  // join steps compiled onto the merge path
  std::vector<StratumStats> per_stratum;
};

/// Evaluates `program` on `database` (initial values for all relations; IDB
/// entries are allowed and participate, matching the paper's uniform
/// initialization). Fails with FAILED_PRECONDITION when the program is not
/// stratified and INVALID_ARGUMENT when a rule is unsafe. On success the
/// returned database holds the perfect model's relations (EDB copied
/// through).
Result<Database> EvaluateStratified(const Program& program,
                                    const Database& database,
                                    const EngineOptions& options = {},
                                    EngineStats* stats = nullptr);

/// Borrowed-EDB evaluation: identical semantics to the Database overload,
/// but the initial facts arrive as one FactSpan per predicate of `program`
/// (in predicate order; `facts.size()` must equal num_predicates). Each
/// span's rows must be sorted, duplicate-free, row-major of the
/// predicate's arity — exactly the layout Database::Facts() hands out —
/// and must stay valid and unmutated for the duration of the call. The
/// spans are streamed straight into the engine's relations through the
/// uniqueness-exploiting bulk path with no intermediate Database: this is
/// the grounder's zero-copy hot path (its binding programs used to copy
/// the EDB arena into a scratch Database only for evaluation to copy it
/// again into Relations).
Result<Database> EvaluateStratified(const Program& program,
                                    Span<const FactSpan> facts,
                                    const EngineOptions& options = {},
                                    EngineStats* stats = nullptr);

}  // namespace tiebreak

#endif  // TIEBREAK_ENGINE_EVALUATION_H_
