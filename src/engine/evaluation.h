// Bottom-up evaluation of stratified Datalog¬ programs: per-stratum least
// fixpoints with negation-as-failure on fully-computed lower strata. Both
// naive and semi-naive (delta-driven) iteration are provided; they must
// agree (tested), and on stratified inputs they compute exactly the perfect
// model / well-founded model of the ground semantics (cross-checked against
// core/).
//
// Rules must be *safe* (range-restricted): every variable occurring in the
// head or in a negated body literal must also occur in some positive body
// literal. (The ground-graph semantics of core/ handles unsafe rules fine —
// the paper's program (1) is unsafe — but set-at-a-time evaluation needs
// safety; CheckSafety reports violations.)
//
// Performance contract: relations store tuples in flat columnar arenas
// with incrementally-maintained probe indexes (see engine/relation.h), the
// per-rule join is compiled to a flat action plan with literals reordered
// by bound-argument selectivity, and the inner join loop performs no heap
// allocation (derived tuples are handed to an internal FunctionView sink
// as spans into a reusable scratch buffer).
#ifndef TIEBREAK_ENGINE_EVALUATION_H_
#define TIEBREAK_ENGINE_EVALUATION_H_

#include <vector>

#include "engine/relation.h"
#include "lang/database.h"
#include "lang/program.h"
#include "util/status.h"

namespace tiebreak {

/// Returns OK iff every rule of `program` is range-restricted.
Status CheckSafety(const Program& program);

/// Evaluation knobs.
struct EngineOptions {
  /// Use semi-naive (delta) iteration; false = naive re-derivation.
  bool semi_naive = true;
  /// Abort with RESOURCE_EXHAUSTED beyond this many derived tuples.
  int64_t max_tuples = 50'000'000;
};

/// Statistics of one evaluation.
struct EngineStats {
  int64_t tuples_derived = 0;   // inserted (new) tuples
  int64_t rule_applications = 0;
  int32_t strata = 0;
  int32_t iterations = 0;  // total fixpoint rounds across strata
};

/// Evaluates `program` on `database` (initial values for all relations; IDB
/// entries are allowed and participate, matching the paper's uniform
/// initialization). Fails with FAILED_PRECONDITION when the program is not
/// stratified and INVALID_ARGUMENT when a rule is unsafe. On success the
/// returned database holds the perfect model's relations (EDB copied
/// through).
Result<Database> EvaluateStratified(const Program& program,
                                    const Database& database,
                                    const EngineOptions& options = {},
                                    EngineStats* stats = nullptr);

}  // namespace tiebreak

#endif  // TIEBREAK_ENGINE_EVALUATION_H_
