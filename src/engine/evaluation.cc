#include "engine/evaluation.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "core/stratification.h"
#include "util/function_view.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace tiebreak {

Status CheckSafety(const Program& program) {
  for (int32_t r = 0; r < program.num_rules(); ++r) {
    const Rule& rule = program.rule(r);
    std::vector<bool> bound(rule.num_variables, false);
    for (const Literal& lit : rule.body) {
      if (!lit.positive) continue;
      for (const Term& t : lit.atom.args) {
        if (t.is_variable()) bound[t.index] = true;
      }
    }
    auto check_atom = [&](const Atom& atom, const char* where) -> Status {
      for (const Term& t : atom.args) {
        if (t.is_variable() && !bound[t.index]) {
          return Status::InvalidArgument(
              "rule " + std::to_string(r) + ": variable in " + where +
              " does not occur in any positive body literal");
        }
      }
      return Status::Ok();
    };
    Status s = check_atom(rule.head, "head");
    if (!s.ok()) return s;
    for (const Literal& lit : rule.body) {
      if (lit.positive) continue;
      s = check_atom(lit.atom, "negated literal");
      if (!s.ok()) return s;
    }
  }
  return Status::Ok();
}

namespace {

struct ArgAction {
  enum Kind : uint8_t {
    kConst,     // column must equal / emits `index` (a ConstId)
    kCheckVar,  // column must equal / emits binding_[index]
    kBindVar,   // column binds variable `index` (join steps only)
  };
  Kind kind;
  int32_t index;
};

struct JoinStep {
  // nullptr = the per-call delta input. Deltas are not separate relations:
  // relations are append-only with stable row ids, so "the tuples derived
  // last round" is exactly a row range [delta_begin, delta_end) of the head
  // relation, passed per execution (cached plans must not pin it — the
  // range moves every round).
  const Relation* relation = nullptr;
  uint32_t mask = 0;
  int32_t actions_begin = 0;
  int32_t actions_end = 0;
  int64_t size_snapshot = 0;  // source cardinality at compile time
};

// Ground-atom template for negated literals and the head: actions are
// kConst/kCheckVar only (safety guarantees all variables are bound).
struct AtomTemplate {
  PredId predicate = -1;
  int32_t actions_begin = 0;
  int32_t actions_end = 0;
};

/// One rule body compiled to a flat join plan for a fixed delta literal.
/// The delta literal (when present) is always the first join step — it is
/// the novelty driver of a semi-naive round, is typically the smallest
/// input, and putting it outermost is what makes the scan shardable. The
/// remaining positive literals are greedily reordered by selectivity (most
/// bound argument positions first; ties go to the smaller relation), and
/// each literal is lowered to a JoinStep whose argument actions (constant
/// check / bound-variable check / fresh-variable bind) live in one flat
/// action array.
struct CompiledPlan {
  std::vector<ArgAction> actions;
  std::vector<JoinStep> steps;
  std::vector<AtomTemplate> negatives;
  AtomTemplate head;
  int32_t num_variables = 0;
  size_t max_arity = 0;
  /// True when the first join step has an empty probe mask: it is then
  /// executed as a direct arena scan (descending row order — identical to
  /// the newest-first probe order — with no index materialization), and
  /// the scan can be sharded into row ranges for data parallelism within
  /// one (rule, delta-literal) job.
  bool direct_scan = false;
};

/// Compiles rule bodies into CompiledPlans and caches them per
/// (rule, delta-literal). A cached plan is reused until some joined
/// relation's cardinality drifts past `plan_refresh_drift` of the snapshot
/// taken when the plan was compiled; then the selectivity reordering is
/// re-run. All cache mutation happens on the coordinating thread between
/// parallel fan-outs, so workers only ever see finished plans.
class PlanCache {
 public:
  PlanCache(const Program& program, const std::vector<Relation>& relations,
            int64_t refresh_drift)
      : program_(program),
        relations_(relations),
        refresh_drift_(refresh_drift),
        plans_(program.num_rules()) {}

  /// Returns the plan for (rule_index, delta_literal), compiling or
  /// refreshing it if needed. `delta_size` is the row count of the delta
  /// range the delta literal covers (0 when delta_literal == -1).
  const CompiledPlan& Get(int32_t rule_index, int32_t delta_literal,
                          int64_t delta_size, EngineStats* stats) {
    std::vector<std::unique_ptr<CompiledPlan>>& slots = plans_[rule_index];
    const size_t slot = static_cast<size_t>(delta_literal + 1);
    if (slots.size() <= slot) slots.resize(slot + 1);
    std::unique_ptr<CompiledPlan>& plan = slots[slot];
    if (plan != nullptr && refresh_drift_ > 0 && !Drifted(*plan, delta_size)) {
      ++stats->plan_cache_hits;
      return *plan;
    }
    if (plan == nullptr) plan = std::make_unique<CompiledPlan>();
    Compile(program_.rule(rule_index), delta_literal, delta_size, plan.get());
    ++stats->plans_compiled;
    return *plan;
  }

 private:
  /// True when some step's source relation grew or shrank by more than the
  /// refresh factor relative to its compile-time snapshot (sizes below 16
  /// are floored: reordering tiny relations is never worth a recompile).
  bool Drifted(const CompiledPlan& plan, int64_t delta_size) const {
    for (const JoinStep& step : plan.steps) {
      const int64_t current =
          step.relation != nullptr ? step.relation->size() : delta_size;
      const int64_t lo = std::max<int64_t>(
          std::min(current, step.size_snapshot), 16);
      const int64_t hi = std::max(current, step.size_snapshot);
      if (hi > refresh_drift_ * lo) return true;
    }
    return false;
  }

  void Compile(const Rule& rule, int32_t delta_literal, int64_t delta_size,
               CompiledPlan* plan) {
    plan->actions.clear();
    plan->steps.clear();
    plan->negatives.clear();
    plan->num_variables = rule.num_variables;
    plan->max_arity = rule.head.args.size();
    var_bound_.assign(rule.num_variables, false);

    auto emit_step = [&](int32_t body_index) {
      const Atom& atom = rule.body[body_index].atom;
      JoinStep step;
      step.relation = (body_index == delta_literal)
                          ? nullptr
                          : &relations_[atom.predicate];
      step.size_snapshot = (body_index == delta_literal)
                               ? delta_size
                               : relations_[atom.predicate].size();
      step.actions_begin = static_cast<int32_t>(plan->actions.size());
      for (size_t i = 0; i < atom.args.size(); ++i) {
        const Term& t = atom.args[i];
        if (t.is_constant()) {
          step.mask |= 1u << i;
          plan->actions.push_back({ArgAction::kConst, t.index});
        } else if (var_bound_[t.index]) {
          // Bound by an earlier literal: part of the probe key. A repeat
          // within this literal is checked but cannot be probed on (its
          // value is only known while scanning a candidate row).
          bool earlier_in_literal = false;
          for (size_t j = 0; j < i; ++j) {
            const Term& prev = atom.args[j];
            if (prev.is_variable() && prev.index == t.index) {
              earlier_in_literal = true;
              break;
            }
          }
          if (!earlier_in_literal) step.mask |= 1u << i;
          plan->actions.push_back({ArgAction::kCheckVar, t.index});
        } else {
          var_bound_[t.index] = true;
          plan->actions.push_back({ArgAction::kBindVar, t.index});
        }
      }
      step.actions_end = static_cast<int32_t>(plan->actions.size());
      plan->steps.push_back(step);
    };

    pending_.clear();
    for (int32_t b = 0; b < static_cast<int32_t>(rule.body.size()); ++b) {
      if (rule.body[b].positive && b != delta_literal) pending_.push_back(b);
      plan->max_arity = std::max(plan->max_arity, rule.body[b].atom.args.size());
    }
    // The delta literal always goes first (see CompiledPlan); the rest are
    // ordered greedily by selectivity.
    if (delta_literal >= 0) emit_step(delta_literal);
    while (!pending_.empty()) {
      size_t best_at = 0;
      int64_t best_bound = -1;
      int64_t best_size = 0;
      for (size_t i = 0; i < pending_.size(); ++i) {
        const Atom& atom = rule.body[pending_[i]].atom;
        int64_t bound_args = 0;
        for (const Term& t : atom.args) {
          if (t.is_constant() || var_bound_[t.index]) ++bound_args;
        }
        const Relation& rel = relations_[atom.predicate];
        if (bound_args > best_bound ||
            (bound_args == best_bound && rel.size() < best_size)) {
          best_at = i;
          best_bound = bound_args;
          best_size = rel.size();
        }
      }
      const int32_t body_index = pending_[best_at];
      pending_.erase(pending_.begin() + best_at);
      emit_step(body_index);
    }
    plan->direct_scan = !plan->steps.empty() && plan->steps[0].mask == 0;

    auto add_template = [&](const Atom& atom) {
      AtomTemplate tmpl;
      tmpl.predicate = atom.predicate;
      tmpl.actions_begin = static_cast<int32_t>(plan->actions.size());
      for (const Term& t : atom.args) {
        plan->actions.push_back({t.is_constant() ? ArgAction::kConst
                                                 : ArgAction::kCheckVar,
                                 t.index});
      }
      tmpl.actions_end = static_cast<int32_t>(plan->actions.size());
      return tmpl;
    };
    for (const Literal& lit : rule.body) {
      if (!lit.positive) plan->negatives.push_back(add_template(lit.atom));
    }
    plan->head = add_template(rule.head);
  }

  const Program& program_;
  const std::vector<Relation>& relations_;
  const int64_t refresh_drift_;
  // plans_[rule][1 + delta_literal]; slot 0 is the full (delta = -1) plan.
  std::vector<std::vector<std::unique_ptr<CompiledPlan>>> plans_;
  // Compiler scratch (reused so steady-state refreshes stop allocating).
  std::vector<int32_t> pending_;
  std::vector<bool> var_bound_;
};

/// Executes CompiledPlans: the backtracking join over one rule body. One
/// instance per worker thread — all mutable state (bindings, probe pattern,
/// ground-atom scratch) is private to the instance, and during parallel
/// rounds the shared relations are only read (Probe on pre-materialized
/// indexes, Contains on the dedupe table).
class RuleEvaluator {
 public:
  using Sink = FunctionView<void(const ConstId*)>;

  explicit RuleEvaluator(const std::vector<Relation>& relations)
      : relations_(relations) {}

  /// Runs `plan`. A null-relation join step (the delta literal) ranges over
  /// `delta_relation` restricted to the step-0 row range. Each derived head
  /// tuple is passed to `sink` as a pointer to head-arity ids (valid only
  /// for the duration of the call).
  ///
  /// `range_begin`/`range_end` restrict the *first* join step to rows
  /// [range_begin, range_end) of its source relation (-1 = unbounded on
  /// that side). This one mechanism carries both semi-naive deltas (the
  /// range of rows published last round; index chains are newest-first, so
  /// a probe filters by row id) and shard-level data parallelism (a slice
  /// of a direct scan). A full direct scan with range_end = -1 is bounded
  /// at entry, so rows inserted by this very execution are not rescanned —
  /// the same snapshot semantics Probe gives.
  /// `stop` is the cooperative abort for the tuple budget: when it becomes
  /// true (set by a sink that detected overflow, possibly on another
  /// worker), the join stops matching rows, bounding how far past the
  /// budget any single job can run.
  void Execute(const CompiledPlan& plan, const Relation* delta_relation,
               int32_t range_begin, int32_t range_end, Sink sink,
               int64_t* applications, const std::atomic<bool>* stop) {
    plan_ = &plan;
    delta_ = delta_relation;
    range_begin_ = range_begin;
    range_end_ = range_end;
    sink_ = &sink;
    applications_ = applications;
    stop_ = stop;
    binding_.assign(plan.num_variables, -1);
    if (scratch_.size() < plan.max_arity) scratch_.resize(plan.max_arity);
    if (pattern_.size() < plan.max_arity) pattern_.resize(plan.max_arity);
    Join(0);
  }

 private:
  // Instantiates a ground-atom template into scratch_.
  void FillScratch(const AtomTemplate& tmpl) {
    ConstId* out = scratch_.data();
    for (int32_t a = tmpl.actions_begin; a < tmpl.actions_end; ++a) {
      const ArgAction& action = plan_->actions[a];
      *out++ = action.kind == ArgAction::kConst ? action.index
                                                : binding_[action.index];
    }
  }

  void Join(size_t depth) {
    if (depth == plan_->steps.size()) {
      ++*applications_;
      // All positives matched: test the negated literals (safety guarantees
      // they are ground now).
      for (const AtomTemplate& neg : plan_->negatives) {
        FillScratch(neg);
        if (relations_[neg.predicate].Contains(scratch_.data())) return;
      }
      FillScratch(plan_->head);
      (*sink_)(scratch_.data());
      return;
    }
    const JoinStep& step = plan_->steps[depth];
    const Relation& relation =
        step.relation != nullptr ? *step.relation : *delta_;
    if (depth == 0 && plan_->direct_scan) {
      // Empty probe mask: scan the arena directly (no index), descending so
      // the visit order matches the newest-first probe order, restricted to
      // this execution's step-0 range.
      const int32_t end = range_end_ >= 0
                              ? range_end_
                              : static_cast<int32_t>(relation.size());
      const int32_t begin = range_begin_ >= 0 ? range_begin_ : 0;
      for (int32_t row = end - 1; row >= begin; --row) {
        MatchRow(step, relation, row);
      }
      return;
    }
    ConstId* pattern = pattern_.data();
    {
      int32_t column = 0;
      for (int32_t a = step.actions_begin; a < step.actions_end;
           ++a, ++column) {
        const ArgAction& action = plan_->actions[a];
        if (action.kind == ArgAction::kConst) {
          pattern[column] = action.index;
        } else if (action.kind == ArgAction::kCheckVar) {
          pattern[column] = binding_[action.index];
        }
      }
    }
    if (depth == 0 && (range_begin_ >= 0 || range_end_ >= 0)) {
      // Range-restricted probe (a delta literal with a non-empty mask):
      // chains are newest-first, i.e. strictly descending row ids, so rows
      // past the range end are skipped and the walk stops below the start.
      for (const int32_t row : relation.Probe(step.mask, pattern)) {
        if (range_end_ >= 0 && row >= range_end_) continue;
        if (row < range_begin_) break;
        MatchRow(step, relation, row);
      }
      return;
    }
    for (const int32_t row : relation.Probe(step.mask, pattern)) {
      MatchRow(step, relation, row);
    }
  }

  /// Checks row `row` against `step`'s actions (binding fresh variables),
  /// recurses on a match, then unbinds this step's variables. Variables are
  /// statically owned by the step that binds them, so unconditionally
  /// unbinding the step's kBindVar set is exact.
  void MatchRow(const JoinStep& step, const Relation& relation, int32_t row) {
    if (stop_->load(std::memory_order_relaxed)) return;
    const size_t depth = static_cast<size_t>(&step - plan_->steps.data());
    const ConstId* tuple = relation.Row(row);
    bool match = true;
    int32_t column = 0;
    for (int32_t a = step.actions_begin; match && a < step.actions_end;
         ++a, ++column) {
      const ArgAction& action = plan_->actions[a];
      switch (action.kind) {
        case ArgAction::kConst:
          match = tuple[column] == action.index;
          break;
        case ArgAction::kCheckVar:
          match = tuple[column] == binding_[action.index];
          break;
        case ArgAction::kBindVar:
          binding_[action.index] = tuple[column];
          break;
      }
    }
    if (match) Join(depth + 1);
    for (int32_t a = step.actions_begin; a < step.actions_end; ++a) {
      if (plan_->actions[a].kind == ArgAction::kBindVar) {
        binding_[plan_->actions[a].index] = -1;
      }
    }
  }

  const std::vector<Relation>& relations_;
  const CompiledPlan* plan_ = nullptr;
  const Relation* delta_ = nullptr;
  int32_t range_begin_ = -1;
  int32_t range_end_ = -1;
  const Sink* sink_ = nullptr;
  int64_t* applications_ = nullptr;
  const std::atomic<bool>* stop_ = nullptr;

  // Hot-path scratch: variable bindings, probe pattern, ground-atom buffer.
  std::vector<ConstId> binding_;
  std::vector<ConstId> pattern_;
  std::vector<ConstId> scratch_;
};

/// One (rule, delta-literal) evaluation of a fixpoint round. Jobs within a
/// round are independent (they only read the published relations) and are
/// what the thread pool fans out.
struct RoundJob {
  int32_t rule = -1;
  int32_t delta_literal = -1;
  // Resolved at dispatch time in parallel mode (plans must be finished and
  // their probe indexes materialized before the fan-out); left null in
  // serial mode, where the plan is resolved at execution time so its
  // selectivity snapshot sees the tuples earlier jobs of the same round
  // already published (e.g. round 0 of transitive closure compiles the
  // recursive rule after the base rule filled the head relation — the
  // order that lets a chain close in one pass).
  const CompiledPlan* plan = nullptr;
  PredId head = -1;
  // The delta literal's source relation (deltas are row ranges of the
  // global relation, never copies); null for full-evaluation jobs.
  const Relation* delta_relation = nullptr;
  // Step-0 row range this job covers: the delta range for delta jobs,
  // a shard of the outer scan for sharded jobs, (-1, -1) = everything.
  // Direct-scan jobs over large row ranges are split into one job per
  // shard, which is what parallelizes rounds dominated by a single rule
  // (the transitive-closure shape: one recursive rule, one big delta).
  int32_t range_begin = -1;
  int32_t range_end = -1;
};

/// Materializes every probe index `plan` will touch so the parallel
/// fan-out performs no lazy index construction (Relation::Probe would
/// otherwise mutate the shared relation from worker threads). A direct-scan
/// plan's first step reads the arena, not an index.
void PrewarmPlanIndexes(const CompiledPlan& plan,
                        const Relation* delta_relation) {
  for (size_t i = plan.direct_scan ? 1 : 0; i < plan.steps.size(); ++i) {
    const JoinStep& step = plan.steps[i];
    const Relation* relation =
        step.relation != nullptr ? step.relation : delta_relation;
    relation->EnsureProbeIndex(step.mask);
  }
}

}  // namespace

Result<Database> EvaluateStratified(const Program& program,
                                    const Database& database,
                                    const EngineOptions& options,
                                    EngineStats* stats) {
  Status safety = CheckSafety(program);
  if (!safety.ok()) return safety;
  const auto strata = ComputeStrata(program);
  if (!strata.has_value()) {
    return Status::FailedPrecondition(
        "program is not stratified; use the ground-graph interpreters");
  }
  EngineStats local_stats;
  if (stats == nullptr) stats = &local_stats;

  const int32_t num_preds = program.num_predicates();
  // Probe masks are 32-bit column sets, so the set-at-a-time engine caps
  // arity at 32 (the ground-graph interpreters in core/ have no such cap).
  for (PredId p = 0; p < num_preds; ++p) {
    if (program.predicate(p).arity > 32) {
      return Status::InvalidArgument(
          "predicate " + program.predicate_name(p) +
          " has arity > 32; the relational engine supports at most 32");
    }
  }
  std::vector<Relation> relations;
  relations.reserve(num_preds);
  for (PredId p = 0; p < num_preds; ++p) {
    relations.emplace_back(program.predicate(p).arity);
  }
  int64_t total_tuples = 0;
  for (PredId p = 0; p < num_preds; ++p) {
    relations[p].Reserve(static_cast<int64_t>(database.Relation(p).size()));
    for (const Tuple& tuple : database.Relation(p)) {
      relations[p].Insert(tuple);
      ++total_tuples;
    }
  }

  int32_t max_stratum = 0;
  for (PredId p = 0; p < num_preds; ++p) {
    max_stratum = std::max(max_stratum, (*strata)[p]);
  }
  stats->strata = max_stratum + 1;

  const int32_t num_threads = ThreadPool::EffectiveThreads(options.num_threads);
  stats->threads_used = num_threads;
  const bool parallel = num_threads > 1;

  // Deltas are row ranges, not copies: relations only ever append with
  // stable row ids, so "the tuples predicate p gained last round" is
  // exactly rows [delta_begin[p], delta_end[p]) of relations[p]. Fixpoint
  // rounds therefore maintain no second tuple store at all — they snapshot
  // sizes at round barriers.
  std::vector<int64_t> delta_begin(num_preds, 0);
  std::vector<int64_t> delta_end(num_preds, 0);

  PlanCache plans(program, relations, options.plan_refresh_drift);
  RuleEvaluator serial_evaluator(relations);

  // Parallel-mode state: the pool, one evaluator + one per-predicate
  // staging bank per worker, and per-worker counters merged at barriers.
  std::unique_ptr<ThreadPool> pool;
  std::vector<RuleEvaluator> worker_evaluators;
  std::vector<std::vector<Relation>> staging;
  std::vector<int64_t> worker_applications;
  std::vector<int64_t> worker_staged;  // staged rows this round, per worker
  std::vector<double> worker_busy_seconds;
  if (parallel) {
    pool = std::make_unique<ThreadPool>(num_threads);
    worker_evaluators.reserve(num_threads);
    for (int32_t w = 0; w < num_threads; ++w) {
      worker_evaluators.emplace_back(relations);
    }
    staging.resize(num_threads);
    for (int32_t w = 0; w < num_threads; ++w) {
      staging[w].reserve(num_preds);
      for (PredId p = 0; p < num_preds; ++p) {
        staging[w].emplace_back(program.predicate(p).arity);
      }
    }
    worker_applications.assign(num_threads, 0);
    worker_staged.assign(num_threads, 0);
    worker_busy_seconds.assign(num_threads, 0.0);
  }

  Status overflow = Status::Ok();
  // Cooperative abort for the tuple budget: sinks set it on overflow and
  // every evaluator polls it, so no job (and in parallel mode no worker's
  // staging bank) runs far past max_tuples before the round ends.
  std::atomic<bool> stop{false};

  // Runs one round's jobs and publishes new tuples into `relations`; the
  // published rows land at the end of each arena, which is what makes them
  // the next round's delta ranges.
  //
  // Serial: each derived tuple is inserted immediately (later jobs of the
  // same round observe it). Parallel: workers stage derivations privately
  // while all shared relations stay read-only; at the barrier the
  // coordinating thread merges each stage with Relation::BulkInsert, which
  // dedupes against the fingerprint table and extends every probe index
  // once per batch. Both converge to the same least fixpoint.
  auto run_round = [&](const std::vector<RoundJob>& jobs) -> Status {
    if (!parallel) {
      for (const RoundJob& job : jobs) {
        const int64_t delta_size =
            job.delta_relation != nullptr ? job.range_end - job.range_begin
                                          : 0;
        const CompiledPlan& plan =
            plans.Get(job.rule, job.delta_literal, delta_size, stats);
        auto sink = [&](const ConstId* values) {
          if (relations[job.head].Insert(values)) {
            ++stats->tuples_derived;
            if (++total_tuples > options.max_tuples) {
              overflow = Status::ResourceExhausted("tuple budget exceeded");
              stop.store(true, std::memory_order_relaxed);
            }
          }
        };
        serial_evaluator.Execute(plan, job.delta_relation, job.range_begin,
                                 job.range_end, sink,
                                 &stats->rule_applications, &stop);
        if (!overflow.ok()) return overflow;
      }
      return Status::Ok();
    }
    // Budget guard for the fan-out: a worker whose staged-row count alone
    // would blow the remaining budget trips `stop`, and every worker polls
    // it — so staging memory stays bounded by threads × remaining budget
    // even for a single cross-product round. (Conservative: cross-worker
    // duplicates could merge to fewer rows; the barrier re-checks the real
    // total and is the authority.)
    const int64_t round_budget =
        std::max<int64_t>(options.max_tuples - total_tuples, 0);
    std::fill(worker_staged.begin(), worker_staged.end(), 0);
    auto body = [&](int32_t task, int32_t worker) {
      const RoundJob& job = jobs[task];
      WallTimer busy;
      Relation& stage = staging[worker][job.head];
      const Relation& published = relations[job.head];
      int64_t& staged = worker_staged[worker];
      auto sink = [&](const ConstId* values) {
        // Pre-filter against the published relation (read-only; dedupes
        // most rediscoveries), then stage; the barrier merge is the
        // authority on cross-worker duplicates. One fingerprint serves
        // both tables.
        const uint64_t fingerprint = published.TupleFingerprint(values);
        if (!published.Contains(values, fingerprint) &&
            stage.Insert(values, fingerprint)) {
          if (++staged > round_budget) {
            stop.store(true, std::memory_order_relaxed);
          }
        }
      };
      worker_evaluators[worker].Execute(*job.plan, job.delta_relation,
                                        job.range_begin, job.range_end, sink,
                                        &worker_applications[worker], &stop);
      worker_busy_seconds[worker] += busy.Seconds();
    };
    pool->ParallelFor(static_cast<int32_t>(jobs.size()), body);
    for (int32_t w = 0; w < num_threads; ++w) {
      stats->rule_applications += worker_applications[w];
      worker_applications[w] = 0;
    }
    // Barrier merge, on the coordinating thread.
    for (PredId p = 0; p < num_preds; ++p) {
      for (int32_t w = 0; w < num_threads; ++w) {
        Relation& stage = staging[w][p];
        if (stage.empty()) continue;
        const int64_t added = relations[p].BulkInsert(stage);
        stats->tuples_derived += added;
        total_tuples += added;
        stage.Clear();
      }
    }
    if (total_tuples > options.max_tuples) {
      return Status::ResourceExhausted("tuple budget exceeded");
    }
    return Status::Ok();
  };

  for (int32_t stratum = 0; stratum <= max_stratum; ++stratum) {
    std::vector<int32_t> stratum_rules;
    for (int32_t r = 0; r < program.num_rules(); ++r) {
      if ((*strata)[program.rule(r).head.predicate] == stratum) {
        stratum_rules.push_back(r);
      }
    }
    if (stratum_rules.empty()) continue;

    WallTimer stratum_timer;
    const int64_t stratum_tuples_before = stats->tuples_derived;
    const int32_t stratum_iterations_before = stats->iterations;
    if (parallel) {
      std::fill(worker_busy_seconds.begin(), worker_busy_seconds.end(), 0.0);
    }

    // Which body literals are recursive (positive, IDB, same stratum)?
    auto recursive_literals = [&](const Rule& rule) {
      std::vector<int32_t> result;
      for (int32_t b = 0; b < static_cast<int32_t>(rule.body.size()); ++b) {
        const Literal& lit = rule.body[b];
        if (lit.positive && !program.IsEdb(lit.atom.predicate) &&
            (*strata)[lit.atom.predicate] == stratum) {
          result.push_back(b);
        }
      }
      return result;
    };

    std::vector<RoundJob> jobs;
    // Builds the jobs for one (rule, delta-literal) evaluation. Parallel
    // mode compiles/refreshes the plan now, pre-materializes the probe
    // indexes it will read, and splits direct-scan plans with a large
    // step-0 row range into one job per shard; serial mode defers plan
    // resolution to execution time (see RoundJob::plan).
    constexpr int32_t kMinRowsPerShard = 1024;
    auto push_job = [&](int32_t r, int32_t delta_literal,
                        const Relation* delta_relation, int64_t range_begin,
                        int64_t range_end) {
      RoundJob job;
      job.rule = r;
      job.delta_literal = delta_literal;
      job.head = program.rule(r).head.predicate;
      job.delta_relation = delta_relation;
      job.range_begin = static_cast<int32_t>(range_begin);
      job.range_end = static_cast<int32_t>(range_end);
      if (parallel) {
        const int64_t delta_size =
            delta_relation != nullptr ? range_end - range_begin : 0;
        job.plan = &plans.Get(r, delta_literal, delta_size, stats);
        PrewarmPlanIndexes(*job.plan, delta_relation);
        if (job.plan->direct_scan) {
          const JoinStep& outer = job.plan->steps.front();
          const int64_t begin = range_begin >= 0 ? range_begin : 0;
          const int64_t end =
              range_end >= 0
                  ? range_end
                  : (outer.relation != nullptr ? outer.relation->size()
                                               : delta_relation->size());
          const int64_t rows = end - begin;
          // 2x threads many shards (capped by a minimum shard size): the
          // pool's atomic task claiming then rebalances uneven shards.
          const int64_t shards =
              std::min<int64_t>(2 * num_threads, rows / kMinRowsPerShard);
          if (shards > 1) {
            for (int64_t s = 0; s < shards; ++s) {
              job.range_begin = static_cast<int32_t>(begin + s * rows / shards);
              job.range_end =
                  static_cast<int32_t>(begin + (s + 1) * rows / shards);
              jobs.push_back(job);
            }
            return;
          }
        }
      }
      jobs.push_back(job);
    };

    // The stratum starts with empty deltas; every round barrier advances
    // them to "the rows this round appended".
    auto advance_deltas = [&] {
      for (PredId p = 0; p < num_preds; ++p) {
        delta_begin[p] = delta_end[p];
        delta_end[p] = relations[p].size();
      }
    };
    for (PredId p = 0; p < num_preds; ++p) {
      delta_end[p] = relations[p].size();
    }

    // Round 0: full evaluation of every stratum rule.
    ++stats->iterations;
    jobs.clear();
    for (int32_t r : stratum_rules) push_job(r, -1, nullptr, -1, -1);
    Status round = run_round(jobs);
    if (!round.ok()) return round;
    advance_deltas();

    // Fixpoint rounds.
    while (true) {
      bool delta_empty = true;
      for (PredId p = 0; p < num_preds; ++p) {
        delta_empty = delta_empty && delta_begin[p] == delta_end[p];
      }
      if (delta_empty) break;
      ++stats->iterations;
      jobs.clear();
      for (int32_t r : stratum_rules) {
        const Rule& rule = program.rule(r);
        if (options.semi_naive) {
          // One job per recursive literal, that literal restricted to the
          // delta range of its predicate.
          for (int32_t b : recursive_literals(rule)) {
            const PredId pred = rule.body[b].atom.predicate;
            if (delta_begin[pred] == delta_end[pred]) continue;
            push_job(r, b, &relations[pred], delta_begin[pred],
                     delta_end[pred]);
          }
        } else {
          if (recursive_literals(rule).empty()) continue;
          push_job(r, -1, nullptr, -1, -1);
        }
      }
      round = run_round(jobs);
      if (!round.ok()) return round;
      advance_deltas();
    }

    StratumStats stratum_stats;
    stratum_stats.stratum = stratum;
    stratum_stats.iterations = stats->iterations - stratum_iterations_before;
    stratum_stats.tuples_derived =
        stats->tuples_derived - stratum_tuples_before;
    stratum_stats.seconds = stratum_timer.Seconds();
    if (parallel && stratum_stats.seconds > 0) {
      double busy = 0;
      for (double b : worker_busy_seconds) busy += b;
      stratum_stats.utilization =
          busy / (stratum_stats.seconds * num_threads);
    }
    stats->per_stratum.push_back(stratum_stats);
  }

  // Materialize the result database through the bulk loader: relation rows
  // are already unique, so each predicate is one sort + linear set build
  // instead of size() tree inserts. Sorting happens on flat keys (packed
  // words for arity <= 2, arena-backed row ids above) before any Tuple is
  // heap-allocated — sorting millions of small heap vectors is exactly the
  // cache-miss storm this avoids.
  Database result(program);
  std::vector<Tuple> tuples;
  for (PredId p = 0; p < num_preds; ++p) {
    const Relation& rel = relations[p];
    const int32_t arity = rel.arity();
    const int32_t rows = static_cast<int32_t>(rel.size());
    tuples.clear();
    tuples.reserve(static_cast<size_t>(rows));
    if (arity == 1) {
      std::vector<ConstId> keys(rel.Row(0), rel.Row(0) + rows);
      std::sort(keys.begin(), keys.end());
      for (const ConstId key : keys) tuples.push_back({key});
    } else if (arity == 2) {
      // ConstIds are nonnegative, so the packed word order is the
      // lexicographic tuple order.
      std::vector<uint64_t> keys;
      keys.reserve(static_cast<size_t>(rows));
      for (int32_t row = 0; row < rows; ++row) {
        const ConstId* values = rel.Row(row);
        keys.push_back(static_cast<uint64_t>(values[0]) << 32 |
                       static_cast<uint32_t>(values[1]));
      }
      std::sort(keys.begin(), keys.end());
      for (const uint64_t key : keys) {
        tuples.push_back({static_cast<ConstId>(key >> 32),
                          static_cast<ConstId>(key & 0xFFFFFFFF)});
      }
    } else {
      std::vector<int32_t> order(rows);
      for (int32_t row = 0; row < rows; ++row) order[row] = row;
      std::sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
        return std::lexicographical_compare(rel.Row(a), rel.Row(a) + arity,
                                            rel.Row(b), rel.Row(b) + arity);
      });
      for (const int32_t row : order) tuples.push_back(rel.TupleAt(row));
    }
    result.BulkLoad(p, std::move(tuples));
  }
  return result;
}

}  // namespace tiebreak
