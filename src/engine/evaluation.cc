#include "engine/evaluation.h"

#include <algorithm>
#include <utility>

#include "core/stratification.h"
#include "util/function_view.h"

namespace tiebreak {

Status CheckSafety(const Program& program) {
  for (int32_t r = 0; r < program.num_rules(); ++r) {
    const Rule& rule = program.rule(r);
    std::vector<bool> bound(rule.num_variables, false);
    for (const Literal& lit : rule.body) {
      if (!lit.positive) continue;
      for (const Term& t : lit.atom.args) {
        if (t.is_variable()) bound[t.index] = true;
      }
    }
    auto check_atom = [&](const Atom& atom, const char* where) -> Status {
      for (const Term& t : atom.args) {
        if (t.is_variable() && !bound[t.index]) {
          return Status::InvalidArgument(
              "rule " + std::to_string(r) + ": variable in " + where +
              " does not occur in any positive body literal");
        }
      }
      return Status::Ok();
    };
    Status s = check_atom(rule.head, "head");
    if (!s.ok()) return s;
    for (const Literal& lit : rule.body) {
      if (lit.positive) continue;
      s = check_atom(lit.atom, "negated literal");
      if (!s.ok()) return s;
    }
  }
  return Status::Ok();
}

namespace {

/// Backtracking join over one rule's body, compiled to a flat plan.
///
/// Evaluate() first *compiles* the rule: positive literals are greedily
/// reordered by selectivity (most bound argument positions first; ties go
/// to the smaller relation), then each literal becomes a JoinStep whose
/// argument actions (constant check / bound-variable check / fresh-variable
/// bind) are precomputed into one flat action array. The recursive join
/// then touches no allocating data structure: probe patterns, bindings and
/// ground-atom scratch all live in reusable buffers, derived head tuples
/// are passed to the sink as a raw span into the scratch buffer, and the
/// sink itself is a FunctionView (no std::function allocation/indirection).
class RuleEvaluator {
 public:
  using Sink = FunctionView<void(const ConstId*)>;

  RuleEvaluator(const Program& program, const std::vector<Relation>& relations)
      : program_(program), relations_(relations) {}

  /// Evaluates `rule`; `delta_literal` (or -1) restricts that body literal
  /// to `delta_relation` instead of the full relation. Each derived head
  /// tuple is passed to `sink` as a pointer to head-arity ids (valid only
  /// for the duration of the call).
  void Evaluate(const Rule& rule, int32_t delta_literal,
                const Relation* delta_relation, Sink sink,
                int64_t* applications) {
    rule_ = &rule;
    sink_ = &sink;
    applications_ = applications;
    Compile(rule, delta_literal, delta_relation);
    binding_.assign(rule.num_variables, -1);
    Join(0);
  }

 private:
  struct ArgAction {
    enum Kind : uint8_t {
      kConst,     // column must equal / emits `index` (a ConstId)
      kCheckVar,  // column must equal / emits binding_[index]
      kBindVar,   // column binds variable `index` (join steps only)
    };
    Kind kind;
    int32_t index;
  };

  struct JoinStep {
    const Relation* relation = nullptr;
    uint32_t mask = 0;
    int32_t actions_begin = 0;
    int32_t actions_end = 0;
  };

  // Ground-atom template for negated literals and the head: actions are
  // kConst/kCheckVar only (safety guarantees all variables are bound).
  struct AtomTemplate {
    PredId predicate = -1;
    int32_t actions_begin = 0;
    int32_t actions_end = 0;
  };

  void Compile(const Rule& rule, int32_t delta_literal,
               const Relation* delta_relation) {
    actions_.clear();
    steps_.clear();
    negatives_.clear();
    var_bound_.assign(rule.num_variables, false);
    size_t max_arity = rule.head.args.size();

    // Greedy selectivity ordering over the positive literals: repeatedly
    // take the literal with the most bound argument positions, breaking
    // ties toward the smaller relation (the delta relation counts with its
    // own, typically small, size), then toward body order.
    pending_.clear();
    for (int32_t b = 0; b < static_cast<int32_t>(rule.body.size()); ++b) {
      if (rule.body[b].positive) pending_.push_back(b);
      max_arity = std::max(max_arity, rule.body[b].atom.args.size());
    }
    while (!pending_.empty()) {
      size_t best_at = 0;
      int64_t best_bound = -1;
      int64_t best_size = 0;
      for (size_t i = 0; i < pending_.size(); ++i) {
        const Atom& atom = rule.body[pending_[i]].atom;
        int64_t bound_args = 0;
        for (const Term& t : atom.args) {
          if (t.is_constant() || var_bound_[t.index]) ++bound_args;
        }
        const Relation& rel = (pending_[i] == delta_literal)
                                  ? *delta_relation
                                  : relations_[atom.predicate];
        if (bound_args > best_bound ||
            (bound_args == best_bound && rel.size() < best_size)) {
          best_at = i;
          best_bound = bound_args;
          best_size = rel.size();
        }
      }
      const int32_t body_index = pending_[best_at];
      pending_.erase(pending_.begin() + best_at);

      const Atom& atom = rule.body[body_index].atom;
      JoinStep step;
      step.relation = (body_index == delta_literal)
                          ? delta_relation
                          : &relations_[atom.predicate];
      step.actions_begin = static_cast<int32_t>(actions_.size());
      for (size_t i = 0; i < atom.args.size(); ++i) {
        const Term& t = atom.args[i];
        if (t.is_constant()) {
          step.mask |= 1u << i;
          actions_.push_back({ArgAction::kConst, t.index});
        } else if (var_bound_[t.index]) {
          // Bound by an earlier literal: part of the probe key. A repeat
          // within this literal is checked but cannot be probed on (its
          // value is only known while scanning a candidate row).
          bool earlier_in_literal = false;
          for (size_t j = 0; j < i; ++j) {
            const Term& prev = atom.args[j];
            if (prev.is_variable() && prev.index == t.index) {
              earlier_in_literal = true;
              break;
            }
          }
          if (!earlier_in_literal) step.mask |= 1u << i;
          actions_.push_back({ArgAction::kCheckVar, t.index});
        } else {
          var_bound_[t.index] = true;
          actions_.push_back({ArgAction::kBindVar, t.index});
        }
      }
      step.actions_end = static_cast<int32_t>(actions_.size());
      steps_.push_back(step);
    }

    auto add_template = [&](const Atom& atom) {
      AtomTemplate tmpl;
      tmpl.predicate = atom.predicate;
      tmpl.actions_begin = static_cast<int32_t>(actions_.size());
      for (const Term& t : atom.args) {
        actions_.push_back({t.is_constant() ? ArgAction::kConst
                                            : ArgAction::kCheckVar,
                            t.index});
      }
      tmpl.actions_end = static_cast<int32_t>(actions_.size());
      return tmpl;
    };
    for (const Literal& lit : rule.body) {
      if (!lit.positive) negatives_.push_back(add_template(lit.atom));
    }
    head_ = add_template(rule.head);
    if (scratch_.size() < max_arity) scratch_.resize(max_arity);
    if (pattern_.size() < max_arity) pattern_.resize(max_arity);
  }

  // Instantiates a ground-atom template into scratch_.
  void FillScratch(const AtomTemplate& tmpl) {
    ConstId* out = scratch_.data();
    for (int32_t a = tmpl.actions_begin; a < tmpl.actions_end; ++a) {
      const ArgAction& action = actions_[a];
      *out++ = action.kind == ArgAction::kConst ? action.index
                                                : binding_[action.index];
    }
  }

  void Join(size_t depth) {
    if (depth == steps_.size()) {
      ++*applications_;
      // All positives matched: test the negated literals (safety guarantees
      // they are ground now).
      for (const AtomTemplate& neg : negatives_) {
        FillScratch(neg);
        if (relations_[neg.predicate].Contains(scratch_.data())) return;
      }
      FillScratch(head_);
      (*sink_)(scratch_.data());
      return;
    }
    const JoinStep& step = steps_[depth];
    ConstId* pattern = pattern_.data();
    {
      int32_t column = 0;
      for (int32_t a = step.actions_begin; a < step.actions_end;
           ++a, ++column) {
        const ArgAction& action = actions_[a];
        if (action.kind == ArgAction::kConst) {
          pattern[column] = action.index;
        } else if (action.kind == ArgAction::kCheckVar) {
          pattern[column] = binding_[action.index];
        }
      }
    }
    for (const int32_t row : step.relation->Probe(step.mask, pattern)) {
      const ConstId* tuple = step.relation->Row(row);
      bool match = true;
      int32_t column = 0;
      for (int32_t a = step.actions_begin; match && a < step.actions_end;
           ++a, ++column) {
        const ArgAction& action = actions_[a];
        switch (action.kind) {
          case ArgAction::kConst:
            match = tuple[column] == action.index;
            break;
          case ArgAction::kCheckVar:
            match = tuple[column] == binding_[action.index];
            break;
          case ArgAction::kBindVar:
            binding_[action.index] = tuple[column];
            break;
        }
      }
      if (match) Join(depth + 1);
      // Variables are statically owned by the level that binds them, so
      // unconditionally unbinding this level's kBindVar set is exact.
      for (int32_t a = step.actions_begin; a < step.actions_end; ++a) {
        if (actions_[a].kind == ArgAction::kBindVar) {
          binding_[actions_[a].index] = -1;
        }
      }
    }
  }

  const Program& program_;
  const std::vector<Relation>& relations_;
  const Rule* rule_ = nullptr;
  const Sink* sink_ = nullptr;
  int64_t* applications_ = nullptr;

  // Compiled plan (rebuilt per Evaluate call; buffers are reused so
  // compilation stops allocating once warm).
  std::vector<ArgAction> actions_;
  std::vector<JoinStep> steps_;
  std::vector<AtomTemplate> negatives_;
  AtomTemplate head_;
  std::vector<int32_t> pending_;
  std::vector<bool> var_bound_;

  // Hot-path scratch: variable bindings, probe pattern, ground-atom buffer.
  std::vector<ConstId> binding_;
  std::vector<ConstId> pattern_;
  std::vector<ConstId> scratch_;
};

}  // namespace

Result<Database> EvaluateStratified(const Program& program,
                                    const Database& database,
                                    const EngineOptions& options,
                                    EngineStats* stats) {
  Status safety = CheckSafety(program);
  if (!safety.ok()) return safety;
  const auto strata = ComputeStrata(program);
  if (!strata.has_value()) {
    return Status::FailedPrecondition(
        "program is not stratified; use the ground-graph interpreters");
  }
  EngineStats local_stats;
  if (stats == nullptr) stats = &local_stats;

  const int32_t num_preds = program.num_predicates();
  // Probe masks are 32-bit column sets, so the set-at-a-time engine caps
  // arity at 32 (the ground-graph interpreters in core/ have no such cap).
  for (PredId p = 0; p < num_preds; ++p) {
    if (program.predicate(p).arity > 32) {
      return Status::InvalidArgument(
          "predicate " + program.predicate_name(p) +
          " has arity > 32; the relational engine supports at most 32");
    }
  }
  std::vector<Relation> relations;
  relations.reserve(num_preds);
  for (PredId p = 0; p < num_preds; ++p) {
    relations.emplace_back(program.predicate(p).arity);
  }
  int64_t total_tuples = 0;
  for (PredId p = 0; p < num_preds; ++p) {
    for (const Tuple& tuple : database.Relation(p)) {
      relations[p].Insert(tuple);
      ++total_tuples;
    }
  }

  int32_t max_stratum = 0;
  for (PredId p = 0; p < num_preds; ++p) {
    max_stratum = std::max(max_stratum, (*strata)[p]);
  }
  stats->strata = max_stratum + 1;

  // Delta relations are allocated once and recycled across rounds/strata
  // (Clear keeps capacity), so fixpoint rounds allocate nothing steady-state.
  std::vector<Relation> delta;
  std::vector<Relation> next_delta;
  delta.reserve(num_preds);
  next_delta.reserve(num_preds);
  for (PredId p = 0; p < num_preds; ++p) {
    delta.emplace_back(program.predicate(p).arity);
    next_delta.emplace_back(program.predicate(p).arity);
  }

  RuleEvaluator evaluator(program, relations);
  for (int32_t stratum = 0; stratum <= max_stratum; ++stratum) {
    std::vector<int32_t> stratum_rules;
    for (int32_t r = 0; r < program.num_rules(); ++r) {
      if ((*strata)[program.rule(r).head.predicate] == stratum) {
        stratum_rules.push_back(r);
      }
    }
    if (stratum_rules.empty()) continue;

    // Which body literals are recursive (positive, IDB, same stratum)?
    auto recursive_literals = [&](const Rule& rule) {
      std::vector<int32_t> result;
      for (int32_t b = 0; b < static_cast<int32_t>(rule.body.size()); ++b) {
        const Literal& lit = rule.body[b];
        if (lit.positive && !program.IsEdb(lit.atom.predicate) &&
            (*strata)[lit.atom.predicate] == stratum) {
          result.push_back(b);
        }
      }
      return result;
    };

    for (PredId p = 0; p < num_preds; ++p) delta[p].Clear();
    Status overflow = Status::Ok();
    // Derives into `relations` and records genuinely new tuples in `out`.
    auto derive_into = [&](PredId head, std::vector<Relation>* out) {
      return [&, head, out](const ConstId* values) {
        if (relations[head].Insert(values)) {
          ++stats->tuples_derived;
          if (++total_tuples > options.max_tuples) {
            overflow = Status::ResourceExhausted("tuple budget exceeded");
          }
          (*out)[head].Insert(values);
        }
      };
    };

    // Round 0: full evaluation of every stratum rule.
    ++stats->iterations;
    for (int32_t r : stratum_rules) {
      const Rule& rule = program.rule(r);
      auto sink = derive_into(rule.head.predicate, &delta);
      evaluator.Evaluate(rule, -1, nullptr, sink, &stats->rule_applications);
      if (!overflow.ok()) return overflow;
    }

    // Fixpoint rounds.
    while (true) {
      bool delta_empty = true;
      for (const Relation& d : delta) delta_empty = delta_empty && d.empty();
      if (delta_empty) break;
      ++stats->iterations;
      for (PredId p = 0; p < num_preds; ++p) next_delta[p].Clear();
      for (int32_t r : stratum_rules) {
        const Rule& rule = program.rule(r);
        if (options.semi_naive) {
          // One pass per recursive literal, that literal restricted to the
          // delta of its predicate.
          for (int32_t b : recursive_literals(rule)) {
            const PredId pred = rule.body[b].atom.predicate;
            if (delta[pred].empty()) continue;
            auto sink = derive_into(rule.head.predicate, &next_delta);
            evaluator.Evaluate(rule, b, &delta[pred], sink,
                               &stats->rule_applications);
            if (!overflow.ok()) return overflow;
          }
        } else {
          if (recursive_literals(rule).empty()) continue;
          auto sink = derive_into(rule.head.predicate, &next_delta);
          evaluator.Evaluate(rule, -1, nullptr, sink,
                             &stats->rule_applications);
          if (!overflow.ok()) return overflow;
        }
      }
      std::swap(delta, next_delta);
    }
  }

  Database result(program);
  for (PredId p = 0; p < num_preds; ++p) {
    const Relation& rel = relations[p];
    for (int32_t row = 0; row < rel.size(); ++row) {
      result.Insert(p, rel.TupleAt(row));
    }
  }
  return result;
}

}  // namespace tiebreak
