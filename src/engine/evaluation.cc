#include "engine/evaluation.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "core/stratification.h"

namespace tiebreak {

Status CheckSafety(const Program& program) {
  for (int32_t r = 0; r < program.num_rules(); ++r) {
    const Rule& rule = program.rule(r);
    std::vector<bool> bound(rule.num_variables, false);
    for (const Literal& lit : rule.body) {
      if (!lit.positive) continue;
      for (const Term& t : lit.atom.args) {
        if (t.is_variable()) bound[t.index] = true;
      }
    }
    auto check_atom = [&](const Atom& atom, const char* where) -> Status {
      for (const Term& t : atom.args) {
        if (t.is_variable() && !bound[t.index]) {
          return Status::InvalidArgument(
              "rule " + std::to_string(r) + ": variable in " + where +
              " does not occur in any positive body literal");
        }
      }
      return Status::Ok();
    };
    Status s = check_atom(rule.head, "head");
    if (!s.ok()) return s;
    for (const Literal& lit : rule.body) {
      if (lit.positive) continue;
      s = check_atom(lit.atom, "negated literal");
      if (!s.ok()) return s;
    }
  }
  return Status::Ok();
}

namespace {

// Backtracking join over one rule's body.
class RuleEvaluator {
 public:
  RuleEvaluator(const Program& program, const std::vector<Relation>& relations)
      : program_(program), relations_(relations) {}

  /// Evaluates `rule`; `delta_literal` (or -1) restricts that body literal
  /// to `delta_relation` instead of the full relation. Each derived head
  /// tuple is passed to `sink`.
  void Evaluate(const Rule& rule, int32_t delta_literal,
                const Relation* delta_relation,
                const std::function<void(Tuple)>& sink, int64_t* applications) {
    rule_ = &rule;
    delta_literal_ = delta_literal;
    delta_relation_ = delta_relation;
    sink_ = &sink;
    applications_ = applications;
    binding_.assign(rule.num_variables, -1);
    positives_.clear();
    for (int32_t b = 0; b < static_cast<int32_t>(rule.body.size()); ++b) {
      if (rule.body[b].positive) positives_.push_back(b);
    }
    Recurse(0);
  }

 private:
  Tuple Substitute(const Atom& atom) const {
    Tuple tuple;
    tuple.reserve(atom.args.size());
    for (const Term& t : atom.args) {
      if (t.is_constant()) {
        tuple.push_back(t.index);
      } else {
        TIEBREAK_CHECK_GE(binding_[t.index], 0);
        tuple.push_back(binding_[t.index]);
      }
    }
    return tuple;
  }

  void Recurse(size_t next) {
    if (next == positives_.size()) {
      ++*applications_;
      // All positives matched: test the negated literals (safety guarantees
      // they are ground now).
      for (const Literal& lit : rule_->body) {
        if (lit.positive) continue;
        if (relations_[lit.atom.predicate].Contains(Substitute(lit.atom))) {
          return;
        }
      }
      (*sink_)(Substitute(rule_->head));
      return;
    }
    const int32_t body_index = positives_[next];
    const Atom& atom = rule_->body[body_index].atom;
    const Relation& rel = (body_index == delta_literal_)
                              ? *delta_relation_
                              : relations_[atom.predicate];
    // Build the bound-position mask and probe pattern.
    uint32_t mask = 0;
    Tuple pattern(atom.args.size(), 0);
    for (size_t i = 0; i < atom.args.size(); ++i) {
      const Term& t = atom.args[i];
      if (t.is_constant()) {
        mask |= 1u << i;
        pattern[i] = t.index;
      } else if (binding_[t.index] >= 0) {
        mask |= 1u << i;
        pattern[i] = binding_[t.index];
      }
    }
    for (int32_t index : rel.Probe(mask, pattern)) {
      const Tuple& tuple = rel.tuples()[index];
      // Verify (hash buckets may collide) and bind.
      bool match = true;
      bound_here_.clear();
      for (size_t i = 0; i < atom.args.size(); ++i) {
        const Term& t = atom.args[i];
        if (t.is_constant()) {
          if (t.index != tuple[i]) {
            match = false;
            break;
          }
        } else if (binding_[t.index] >= 0) {
          if (binding_[t.index] != tuple[i]) {
            match = false;
            break;
          }
        } else {
          binding_[t.index] = tuple[i];
          bound_here_.push_back(t.index);
        }
      }
      if (match) {
        // bound_here_ is reused across recursion levels; save a copy.
        std::vector<int32_t> bound_saved = bound_here_;
        Recurse(next + 1);
        for (int32_t var : bound_saved) binding_[var] = -1;
      } else {
        for (int32_t var : bound_here_) binding_[var] = -1;
      }
    }
  }

  const Program& program_;
  const std::vector<Relation>& relations_;
  const Rule* rule_ = nullptr;
  int32_t delta_literal_ = -1;
  const Relation* delta_relation_ = nullptr;
  const std::function<void(Tuple)>* sink_ = nullptr;
  int64_t* applications_ = nullptr;
  Tuple binding_;
  std::vector<int32_t> positives_;
  std::vector<int32_t> bound_here_;
};

}  // namespace

Result<Database> EvaluateStratified(const Program& program,
                                    const Database& database,
                                    const EngineOptions& options,
                                    EngineStats* stats) {
  Status safety = CheckSafety(program);
  if (!safety.ok()) return safety;
  const auto strata = ComputeStrata(program);
  if (!strata.has_value()) {
    return Status::FailedPrecondition(
        "program is not stratified; use the ground-graph interpreters");
  }
  EngineStats local_stats;
  if (stats == nullptr) stats = &local_stats;

  const int32_t num_preds = program.num_predicates();
  std::vector<Relation> relations;
  relations.reserve(num_preds);
  for (PredId p = 0; p < num_preds; ++p) {
    relations.emplace_back(program.predicate(p).arity);
  }
  int64_t total_tuples = 0;
  for (PredId p = 0; p < num_preds; ++p) {
    for (const Tuple& tuple : database.Relation(p)) {
      relations[p].Insert(tuple);
      ++total_tuples;
    }
  }

  int32_t max_stratum = 0;
  for (PredId p = 0; p < num_preds; ++p) {
    max_stratum = std::max(max_stratum, (*strata)[p]);
  }
  stats->strata = max_stratum + 1;

  RuleEvaluator evaluator(program, relations);
  for (int32_t stratum = 0; stratum <= max_stratum; ++stratum) {
    std::vector<int32_t> stratum_rules;
    for (int32_t r = 0; r < program.num_rules(); ++r) {
      if ((*strata)[program.rule(r).head.predicate] == stratum) {
        stratum_rules.push_back(r);
      }
    }
    if (stratum_rules.empty()) continue;

    // Which body literals are recursive (positive, IDB, same stratum)?
    auto recursive_literals = [&](const Rule& rule) {
      std::vector<int32_t> result;
      for (int32_t b = 0; b < static_cast<int32_t>(rule.body.size()); ++b) {
        const Literal& lit = rule.body[b];
        if (lit.positive && !program.IsEdb(lit.atom.predicate) &&
            (*strata)[lit.atom.predicate] == stratum) {
          result.push_back(b);
        }
      }
      return result;
    };

    // Round 0: full evaluation of every stratum rule.
    std::vector<Relation> delta;
    delta.reserve(num_preds);
    for (PredId p = 0; p < num_preds; ++p) {
      delta.emplace_back(program.predicate(p).arity);
    }
    Status overflow = Status::Ok();
    auto sink = [&](PredId head, std::vector<Relation>* deltas) {
      return [&, head, deltas](Tuple tuple) {
        if (relations[head].Insert(tuple)) {
          ++stats->tuples_derived;
          if (++total_tuples > options.max_tuples) {
            overflow = Status::ResourceExhausted("tuple budget exceeded");
          }
          (*deltas)[head].Insert(std::move(tuple));
        }
      };
    };
    ++stats->iterations;
    for (int32_t r : stratum_rules) {
      const Rule& rule = program.rule(r);
      evaluator.Evaluate(rule, -1, nullptr,
                         sink(rule.head.predicate, &delta),
                         &stats->rule_applications);
      if (!overflow.ok()) return overflow;
    }

    // Fixpoint rounds.
    while (true) {
      bool delta_empty = true;
      for (const Relation& d : delta) delta_empty = delta_empty && d.empty();
      if (delta_empty) break;
      ++stats->iterations;
      std::vector<Relation> next_delta;
      next_delta.reserve(num_preds);
      for (PredId p = 0; p < num_preds; ++p) {
        next_delta.emplace_back(program.predicate(p).arity);
      }
      for (int32_t r : stratum_rules) {
        const Rule& rule = program.rule(r);
        if (options.semi_naive) {
          // One pass per recursive literal, that literal restricted to the
          // delta of its predicate.
          for (int32_t b : recursive_literals(rule)) {
            const PredId pred = rule.body[b].atom.predicate;
            if (delta[pred].empty()) continue;
            evaluator.Evaluate(rule, b, &delta[pred],
                               sink(rule.head.predicate, &next_delta),
                               &stats->rule_applications);
            if (!overflow.ok()) return overflow;
          }
        } else {
          if (recursive_literals(rule).empty()) continue;
          evaluator.Evaluate(rule, -1, nullptr,
                             sink(rule.head.predicate, &next_delta),
                             &stats->rule_applications);
          if (!overflow.ok()) return overflow;
        }
      }
      delta = std::move(next_delta);
    }
  }

  Database result(program);
  for (PredId p = 0; p < num_preds; ++p) {
    for (const Tuple& tuple : relations[p].tuples()) {
      result.Insert(p, tuple);
    }
  }
  return result;
}

}  // namespace tiebreak
