#include "engine/evaluation.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <memory>
#include <utility>

#include "core/stratification.h"
#include "util/execution_context.h"
#include "util/function_view.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace tiebreak {

Status CheckSafety(const Program& program) {
  for (int32_t r = 0; r < program.num_rules(); ++r) {
    const Rule& rule = program.rule(r);
    std::vector<bool> bound(rule.num_variables, false);
    for (const Literal& lit : rule.body) {
      if (!lit.positive) continue;
      for (const Term& t : lit.atom.args) {
        if (t.is_variable()) bound[t.index] = true;
      }
    }
    auto check_atom = [&](const Atom& atom, const char* where) -> Status {
      for (const Term& t : atom.args) {
        if (t.is_variable() && !bound[t.index]) {
          return Status::InvalidArgument(
              "rule " + std::to_string(r) + ": variable in " + where +
              " does not occur in any positive body literal");
        }
      }
      return Status::Ok();
    };
    Status s = check_atom(rule.head, "head");
    if (!s.ok()) return s;
    for (const Literal& lit : rule.body) {
      if (lit.positive) continue;
      s = check_atom(lit.atom, "negated literal");
      if (!s.ok()) return s;
    }
  }
  return Status::Ok();
}

namespace {

// Rows per block in the vectorized direct-scan kernel: one selection
// bitmask word, and a batch small enough that the gathered bind columns
// and precomputed probe hashes stay L1-resident.
constexpr int32_t kBlock = 64;
// Rows a batched derived-tuple sink buffers before flushing through
// Relation::InsertBatch (the prefetch-pipelined dedupe path).
constexpr int64_t kSinkBlockRows = 512;
// Sort-merge joins only pay off against relations big enough for chain
// walks to miss cache; below this the hash path always wins.
constexpr int64_t kMergeMinRows = 4096;

struct ArgAction {
  enum Kind : uint8_t {
    kConst,     // column must equal / emits `index` (a ConstId)
    kCheckVar,  // column must equal / emits binding_[index]
    kBindVar,   // column binds variable `index` (join steps only)
    // Key-only variants: the column is part of an exact probe key (≤ 2
    // masked columns pack the masked values injectively), so it still
    // contributes `index` / binding_[index] to the probe pattern but needs
    // no per-candidate verification — every chain/run member matches it.
    kConstKey,
    kVarKey,
  };
  Kind kind;
  int32_t index;
};

struct JoinStep {
  // nullptr = the per-call delta input. Deltas are not separate relations:
  // relations are append-only with stable row ids, so "the tuples derived
  // last round" is exactly a row range [delta_begin, delta_end) of the head
  // relation, passed per execution (cached plans must not pin it — the
  // range moves every round).
  const Relation* relation = nullptr;
  uint32_t mask = 0;
  int32_t actions_begin = 0;
  int32_t actions_end = 0;
  int64_t size_snapshot = 0;  // source cardinality at compile time
  // True = probe via the sorted-key index (binary search into a run)
  // instead of hash chains. Only ever set on non-first steps over EDB
  // relations — those are static during evaluation, so ProbeSorted's
  // refresh-on-growth can never invalidate a run mid-join.
  bool merge = false;
};

// Ground-atom template for negated literals and the head: actions are
// kConst/kCheckVar only (safety guarantees all variables are bound).
struct AtomTemplate {
  PredId predicate = -1;
  int32_t actions_begin = 0;
  int32_t actions_end = 0;
};

// Columnar metadata for the vectorized direct-scan kernel (only populated
// when the plan's first step is a direct scan; all columns refer to the
// scanned literal).
//
// A repeated variable within the scanned literal (e.g. t(X, X)): column
// `column` must equal column `eq_column`. Evaluated as a contiguous
// two-column compare into the selection bitmask.
struct ScanEq {
  int32_t column = 0;
  int32_t eq_column = 0;
};
// Column `column` binds variable `var`; the block kernel gathers the
// column's values up front so the resolve loop never re-touches the
// scanned relation (whose columns may reallocate while derived tuples are
// inserted).
struct ScanBind {
  int32_t column = 0;
  int32_t var = 0;
};
// One masked pattern position of the fused second step: either a constant
// or the `bind_slot`-th gathered scan column.
struct KeySource {
  int32_t pattern_column = 0;
  bool from_const = false;
  ConstId value = -1;
  int32_t bind_slot = 0;
};

/// One rule body compiled to a flat join plan for a fixed delta literal.
/// The delta literal (when present) is always the first join step — it is
/// the novelty driver of a semi-naive round, is typically the smallest
/// input, and putting it outermost is what makes the scan shardable. The
/// remaining positive literals are greedily reordered by selectivity (most
/// bound argument positions first; ties go to the smaller relation), and
/// each literal is lowered to a JoinStep whose argument actions (constant
/// check / bound-variable check / fresh-variable bind) live in one flat
/// action array.
struct CompiledPlan {
  std::vector<ArgAction> actions;
  std::vector<JoinStep> steps;
  std::vector<AtomTemplate> negatives;
  AtomTemplate head;
  int32_t num_variables = 0;
  size_t max_arity = 0;
  /// True when the first join step has an empty probe mask: it is then
  /// executed as a direct column scan (descending row order — identical to
  /// the newest-first probe order — with no index materialization), and
  /// the scan can be sharded into row ranges for data parallelism within
  /// one (rule, delta-literal) job.
  bool direct_scan = false;
  // Vectorized-kernel metadata for the direct scan (see the Scan* types).
  std::vector<ScanEq> scan_eqs;
  std::vector<ScanBind> scan_binds;
  // When the second step is a hash probe whose key is fully determined by
  // the scanned columns and constants, the block kernel hashes all probe
  // keys of a block up front and prefetches their slot lines (`fused_hash`
  // = the gather below is valid).
  std::vector<KeySource> fused_key;
  bool fused_hash = false;
};

/// Compiles rule bodies into CompiledPlans and caches them per
/// (rule, delta-literal). A cached plan is reused until some joined
/// relation's cardinality drifts past `plan_refresh_drift` of the snapshot
/// taken when the plan was compiled; then the selectivity reordering is
/// re-run. All cache mutation happens on the coordinating thread between
/// parallel fan-outs, so workers only ever see finished plans.
class PlanCache {
 public:
  PlanCache(const Program& program, const std::vector<Relation>& relations,
            const EngineOptions& options)
      : program_(program),
        relations_(relations),
        refresh_drift_(options.plan_refresh_drift),
        kernel_(options.kernel),
        merge_selectivity_(options.merge_join_selectivity),
        plans_(program.num_rules()) {}

  /// Returns the plan for (rule_index, delta_literal), compiling or
  /// refreshing it if needed. `delta_size` is the row count of the delta
  /// range the delta literal covers (0 when delta_literal == -1).
  const CompiledPlan& Get(int32_t rule_index, int32_t delta_literal,
                          int64_t delta_size, EngineStats* stats) {
    std::vector<std::unique_ptr<CompiledPlan>>& slots = plans_[rule_index];
    const size_t slot = static_cast<size_t>(delta_literal + 1);
    if (slots.size() <= slot) slots.resize(slot + 1);
    std::unique_ptr<CompiledPlan>& plan = slots[slot];
    if (plan != nullptr && refresh_drift_ > 0 && !Drifted(*plan, delta_size)) {
      ++stats->plan_cache_hits;
      return *plan;
    }
    if (plan == nullptr) plan = std::make_unique<CompiledPlan>();
    Compile(program_.rule(rule_index), delta_literal, delta_size, plan.get());
    ++stats->plans_compiled;
    for (const JoinStep& step : plan->steps) {
      if (step.merge) ++stats->merge_join_steps;
    }
    return *plan;
  }

 private:
  /// True when some step's source relation grew or shrank by more than the
  /// refresh factor relative to its compile-time snapshot (sizes below 16
  /// are floored: reordering tiny relations is never worth a recompile).
  bool Drifted(const CompiledPlan& plan, int64_t delta_size) const {
    for (const JoinStep& step : plan.steps) {
      const int64_t current =
          step.relation != nullptr ? step.relation->size() : delta_size;
      const int64_t lo = std::max<int64_t>(
          std::min(current, step.size_snapshot), 16);
      const int64_t hi = std::max(current, step.size_snapshot);
      if (hi > refresh_drift_ * lo) return true;
    }
    return false;
  }

  /// True when a non-first probe step over `predicate` should run as a
  /// sort-merge join: forced under kMerge, chosen by the selectivity
  /// estimate under kVector. Restricted to EDB predicates — they are
  /// static during evaluation, so the sorted index never refreshes (and
  /// never invalidates a run) while a join holds runs open.
  bool ChooseMergeJoin(PredId predicate, uint32_t mask) const {
    if (kernel_ == JoinKernel::kRow || mask == 0) return false;
    if (!program_.IsEdb(predicate)) return false;
    const Relation& relation = relations_[predicate];
    if (kernel_ == JoinKernel::kMerge) return true;
    if (merge_selectivity_ <= 0 || relation.size() < kMergeMinRows) {
      return false;
    }
    const int64_t distinct = relation.DistinctKeysEstimate(mask);
    return distinct >= 0 &&
           static_cast<double>(distinct) <
               merge_selectivity_ * static_cast<double>(relation.size());
  }

  void Compile(const Rule& rule, int32_t delta_literal, int64_t delta_size,
               CompiledPlan* plan) {
    plan->actions.clear();
    plan->steps.clear();
    plan->negatives.clear();
    plan->num_variables = rule.num_variables;
    plan->max_arity = rule.head.args.size();
    var_bound_.assign(rule.num_variables, false);

    auto emit_step = [&](int32_t body_index) {
      const Atom& atom = rule.body[body_index].atom;
      JoinStep step;
      step.relation = (body_index == delta_literal)
                          ? nullptr
                          : &relations_[atom.predicate];
      step.size_snapshot = (body_index == delta_literal)
                               ? delta_size
                               : relations_[atom.predicate].size();
      step.actions_begin = static_cast<int32_t>(plan->actions.size());
      for (size_t i = 0; i < atom.args.size(); ++i) {
        const Term& t = atom.args[i];
        if (t.is_constant()) {
          step.mask |= 1u << i;
          plan->actions.push_back({ArgAction::kConst, t.index});
        } else if (var_bound_[t.index]) {
          // Bound by an earlier literal: part of the probe key. A repeat
          // within this literal is checked but cannot be probed on (its
          // value is only known while scanning a candidate row).
          bool earlier_in_literal = false;
          for (size_t j = 0; j < i; ++j) {
            const Term& prev = atom.args[j];
            if (prev.is_variable() && prev.index == t.index) {
              earlier_in_literal = true;
              break;
            }
          }
          if (!earlier_in_literal) step.mask |= 1u << i;
          plan->actions.push_back({ArgAction::kCheckVar, t.index});
        } else {
          var_bound_[t.index] = true;
          plan->actions.push_back({ArgAction::kBindVar, t.index});
        }
      }
      step.actions_end = static_cast<int32_t>(plan->actions.size());
      if (!plan->steps.empty() && body_index != delta_literal) {
        step.merge = ChooseMergeJoin(atom.predicate, step.mask);
      }
      // With ≤ 2 masked columns the probe key packs the masked values
      // exactly, so every chain (or sorted-run) candidate already matches
      // them: demote the masked checks to key-only actions (pattern fill
      // without per-candidate verification). The row kernel keeps full
      // verification — it is the tuple-at-a-time reference.
      if (kernel_ != JoinKernel::kRow && step.mask != 0 &&
          Relation::ExactProbeKeys(step.mask)) {
        int32_t column = 0;
        for (int32_t a = step.actions_begin; a < step.actions_end;
             ++a, ++column) {
          if ((step.mask & (1u << column)) == 0) continue;
          ArgAction& action = plan->actions[a];
          action.kind = action.kind == ArgAction::kConst ? ArgAction::kConstKey
                                                         : ArgAction::kVarKey;
        }
      }
      plan->steps.push_back(step);
    };

    pending_.clear();
    for (int32_t b = 0; b < static_cast<int32_t>(rule.body.size()); ++b) {
      if (rule.body[b].positive && b != delta_literal) pending_.push_back(b);
      plan->max_arity = std::max(plan->max_arity, rule.body[b].atom.args.size());
    }
    // The delta literal always goes first (see CompiledPlan); the rest are
    // ordered greedily by selectivity.
    if (delta_literal >= 0) emit_step(delta_literal);
    while (!pending_.empty()) {
      size_t best_at = 0;
      int64_t best_bound = -1;
      int64_t best_size = 0;
      for (size_t i = 0; i < pending_.size(); ++i) {
        const Atom& atom = rule.body[pending_[i]].atom;
        int64_t bound_args = 0;
        for (const Term& t : atom.args) {
          if (t.is_constant() || var_bound_[t.index]) ++bound_args;
        }
        const Relation& rel = relations_[atom.predicate];
        if (bound_args > best_bound ||
            (bound_args == best_bound && rel.size() < best_size)) {
          best_at = i;
          best_bound = bound_args;
          best_size = rel.size();
        }
      }
      const int32_t body_index = pending_[best_at];
      pending_.erase(pending_.begin() + best_at);
      emit_step(body_index);
    }
    plan->direct_scan = !plan->steps.empty() && plan->steps[0].mask == 0;
    CompileVectorMetadata(plan);

    auto add_template = [&](const Atom& atom) {
      AtomTemplate tmpl;
      tmpl.predicate = atom.predicate;
      tmpl.actions_begin = static_cast<int32_t>(plan->actions.size());
      for (const Term& t : atom.args) {
        plan->actions.push_back({t.is_constant() ? ArgAction::kConst
                                                 : ArgAction::kCheckVar,
                                 t.index});
      }
      tmpl.actions_end = static_cast<int32_t>(plan->actions.size());
      return tmpl;
    };
    for (const Literal& lit : rule.body) {
      if (!lit.positive) plan->negatives.push_back(add_template(lit.atom));
    }
    plan->head = add_template(rule.head);
  }

  // Lowers the direct-scan step (and, when possible, the following probe
  // step's key gather) to columnar form. A direct scan has mask 0, so its
  // actions are only kBindVar plus kCheckVar repeats of variables bound
  // earlier in the same literal — constants and cross-literal checks would
  // have set mask bits and taken the probe path instead.
  void CompileVectorMetadata(CompiledPlan* plan) const {
    plan->scan_eqs.clear();
    plan->scan_binds.clear();
    plan->fused_key.clear();
    plan->fused_hash = false;
    if (!plan->direct_scan) return;
    const JoinStep& scan = plan->steps[0];
    int32_t column = 0;
    for (int32_t a = scan.actions_begin; a < scan.actions_end;
         ++a, ++column) {
      const ArgAction& action = plan->actions[a];
      if (action.kind == ArgAction::kBindVar) {
        plan->scan_binds.push_back({column, action.index});
      } else {
        // kCheckVar repeat: find the column that bound the same variable.
        int32_t eq_column = -1;
        int32_t c = 0;
        for (int32_t b = scan.actions_begin; b < a; ++b, ++c) {
          if (plan->actions[b].kind == ArgAction::kBindVar &&
              plan->actions[b].index == action.index) {
            eq_column = c;
            break;
          }
        }
        TIEBREAK_CHECK_GE(eq_column, 0);
        plan->scan_eqs.push_back({column, eq_column});
      }
    }
    if (plan->steps.size() < 2) return;
    const JoinStep& probe = plan->steps[1];
    if (probe.mask == 0 || probe.merge || probe.relation == nullptr) return;
    column = 0;
    for (int32_t a = probe.actions_begin; a < probe.actions_end;
         ++a, ++column) {
      if ((probe.mask & (1u << column)) == 0) continue;
      const ArgAction& action = plan->actions[a];
      KeySource source;
      source.pattern_column = column;
      if (action.kind == ArgAction::kConst ||
          action.kind == ArgAction::kConstKey) {
        source.from_const = true;
        source.value = action.index;
      } else {
        int32_t bind_slot = -1;
        for (size_t s = 0; s < plan->scan_binds.size(); ++s) {
          if (plan->scan_binds[s].var == action.index) {
            bind_slot = static_cast<int32_t>(s);
            break;
          }
        }
        // Masked variables of step 1 are always bound by step 0 (nothing
        // else ran); bail out defensively if not.
        if (bind_slot < 0) return;
        source.bind_slot = bind_slot;
      }
      plan->fused_key.push_back(source);
    }
    plan->fused_hash = true;
  }

  const Program& program_;
  const std::vector<Relation>& relations_;
  const int64_t refresh_drift_;
  const JoinKernel kernel_;
  const double merge_selectivity_;
  // plans_[rule][1 + delta_literal]; slot 0 is the full (delta = -1) plan.
  std::vector<std::vector<std::unique_ptr<CompiledPlan>>> plans_;
  // Compiler scratch (reused so steady-state refreshes stop allocating).
  std::vector<int32_t> pending_;
  std::vector<bool> var_bound_;
};

/// Executes CompiledPlans: the backtracking join over one rule body. One
/// instance per worker thread — all mutable state (bindings, probe pattern,
/// block scratch, ground-atom scratch) is private to the instance, and
/// during parallel rounds the shared relations are only read (Probe /
/// ProbeSorted on pre-materialized indexes, Contains on the dedupe table).
class RuleEvaluator {
 public:
  using Sink = FunctionView<void(const ConstId*)>;

  explicit RuleEvaluator(const std::vector<Relation>& relations)
      : relations_(relations) {}

  /// Runs `plan` under `kernel`. A null-relation join step (the delta
  /// literal) ranges over `delta_relation` restricted to the step-0 row
  /// range. Each derived head tuple is passed to `sink` as a pointer to
  /// head-arity ids (valid only for the duration of the call).
  ///
  /// `range_begin`/`range_end` restrict the *first* join step to rows
  /// [range_begin, range_end) of its source relation (-1 = unbounded on
  /// that side). This one mechanism carries both semi-naive deltas (the
  /// range of rows published last round; index chains are newest-first, so
  /// a probe filters by row id) and shard-level data parallelism (a slice
  /// of a direct scan). A full direct scan with range_end = -1 is bounded
  /// at entry, so rows inserted by this very execution are not rescanned —
  /// the same snapshot semantics Probe gives.
  /// `stop` is the cooperative abort for the tuple budget: when it becomes
  /// true (set by a sink that detected overflow, possibly on another
  /// worker), the join stops matching rows, bounding how far past the
  /// budget any single job can run.
  ///
  /// Both kernels visit the rows of every step in the identical order
  /// (blocks iterate descending, and within a block rows resolve highest-
  /// first), so kernel choice cannot change visit-order-dependent
  /// iteration counts.
  /// `inner_static` promises that no relation read by steps ≥ 1 gains rows
  /// during this execution (no feedback; parallel fan-outs are always
  /// static). The vectorized kernel then resolves a whole block's chain
  /// heads before walking any chain, deepening the prefetch pipeline.
  void Execute(const CompiledPlan& plan, JoinKernel kernel,
               const Relation* delta_relation, int32_t range_begin,
               int32_t range_end, bool inner_static, Sink sink,
               int64_t* applications, const std::atomic<bool>* stop,
               ExecutionContext* ctx = nullptr) {
    plan_ = &plan;
    inner_static_ = inner_static;
    delta_ = delta_relation;
    range_begin_ = range_begin;
    range_end_ = range_end;
    sink_ = &sink;
    applications_ = applications;
    stop_ = stop;
    ctx_ = ctx;
    binding_.assign(plan.num_variables, -1);
    if (scratch_.size() < plan.max_arity) scratch_.resize(plan.max_arity);
    if (pattern_.size() < plan.max_arity) pattern_.resize(plan.max_arity);
    if (kernel != JoinKernel::kRow && plan.direct_scan) {
      VectorScan();
    } else {
      Join(0);
    }
  }

 private:
  // Instantiates a ground-atom template into scratch_.
  void FillScratch(const AtomTemplate& tmpl) {
    ConstId* out = scratch_.data();
    for (int32_t a = tmpl.actions_begin; a < tmpl.actions_end; ++a) {
      const ArgAction& action = plan_->actions[a];
      *out++ = action.kind == ArgAction::kConst ? action.index
                                                : binding_[action.index];
    }
  }

  // All positive steps matched: test the negated literals (safety
  // guarantees they are ground now) and emit the head tuple.
  void EmitMatch() {
    ++*applications_;
    for (const AtomTemplate& neg : plan_->negatives) {
      FillScratch(neg);
      if (relations_[neg.predicate].Contains(scratch_.data())) return;
    }
    FillScratch(plan_->head);
    (*sink_)(scratch_.data());
  }

  void Join(size_t depth) {
    if (depth == plan_->steps.size()) {
      EmitMatch();
      return;
    }
    const JoinStep& step = plan_->steps[depth];
    const Relation& relation =
        step.relation != nullptr ? *step.relation : *delta_;
    if (depth == 0 && plan_->direct_scan) {
      // Empty probe mask: scan the columns directly (no index), descending
      // so the visit order matches the newest-first probe order, restricted
      // to this execution's step-0 range.
      const int32_t end = range_end_ >= 0
                              ? range_end_
                              : static_cast<int32_t>(relation.size());
      const int32_t begin = range_begin_ >= 0 ? range_begin_ : 0;
      for (int32_t row = end - 1; row >= begin; --row) {
        // Resource checkpoint once per kBlock scanned rows — the scalar
        // kernel's analogue of VectorScan's per-block checkpoint.
        if (ctx_ != nullptr && (row & (kBlock - 1)) == 0 &&
            !ctx_->Checkpoint("engine", kBlock).ok()) {
          return;
        }
        MatchRow(step, relation, row);
      }
      return;
    }
    ConstId* pattern = pattern_.data();
    {
      int32_t column = 0;
      for (int32_t a = step.actions_begin; a < step.actions_end;
           ++a, ++column) {
        const ArgAction& action = plan_->actions[a];
        if (action.kind == ArgAction::kConst ||
            action.kind == ArgAction::kConstKey) {
          pattern[column] = action.index;
        } else if (action.kind == ArgAction::kCheckVar ||
                   action.kind == ArgAction::kVarKey) {
          pattern[column] = binding_[action.index];
        }
      }
    }
    if (step.merge) {
      // Sort-merge path: binary search the sorted-key index, scan the
      // contiguous run. Merge steps are never the first step, so no range
      // restriction applies.
      for (const int32_t row : relation.ProbeSorted(step.mask, pattern)) {
        MatchRow(step, relation, row);
      }
      return;
    }
    if (depth == 0 && (range_begin_ >= 0 || range_end_ >= 0)) {
      // Range-restricted probe (a delta literal with a non-empty mask):
      // chains are newest-first, i.e. strictly descending row ids, so rows
      // past the range end are skipped and the walk stops below the start.
      int32_t chain_rows = 0;
      for (const int32_t row : relation.Probe(step.mask, pattern)) {
        if (range_end_ >= 0 && row >= range_end_) continue;
        if (row < range_begin_) break;
        if (ctx_ != nullptr && (++chain_rows & (kBlock - 1)) == 0 &&
            !ctx_->Checkpoint("engine", kBlock).ok()) {
          return;
        }
        MatchRow(step, relation, row);
      }
      return;
    }
    if (depth == 0 && ctx_ != nullptr) {
      int32_t chain_rows = 0;
      for (const int32_t row : relation.Probe(step.mask, pattern)) {
        if ((++chain_rows & (kBlock - 1)) == 0 &&
            !ctx_->Checkpoint("engine", kBlock).ok()) {
          return;
        }
        MatchRow(step, relation, row);
      }
      return;
    }
    for (const int32_t row : relation.Probe(step.mask, pattern)) {
      MatchRow(step, relation, row);
    }
  }

  // The batch-at-a-time direct scan: process the step-0 row range in
  // 64-row blocks, newest block first. Per block: (1) evaluate the
  // repeated-variable filters as contiguous column compares into a
  // selection bitmask, (2) gather the bind columns into block scratch
  // (after this the scanned relation is never re-read, so inserts that
  // reallocate its columns during resolution are harmless), (3) when the
  // second step is a fused hash probe, compute all surviving rows' probe-
  // key hashes and prefetch their slot lines, then (4) resolve rows
  // highest-first (identical order to the scalar kernel), probing with the
  // precomputed hashes.
  void VectorScan() {
    const JoinStep& step0 = plan_->steps[0];
    const Relation& scan =
        step0.relation != nullptr ? *step0.relation : *delta_;
    const int32_t end =
        range_end_ >= 0 ? range_end_ : static_cast<int32_t>(scan.size());
    const int32_t begin = range_begin_ >= 0 ? range_begin_ : 0;
    const size_t num_binds = plan_->scan_binds.size();
    if (block_binds_.size() < num_binds * kBlock) {
      block_binds_.resize(num_binds * kBlock);
    }
    const bool fused = plan_->fused_hash;
    const JoinStep* step1 =
        plan_->steps.size() > 1 ? &plan_->steps[1] : nullptr;
    const Relation* probe_relation = fused ? step1->relation : nullptr;
    Relation::ProbeRef probe_ref;
    if (fused) probe_ref = probe_relation->ProbeRefFor(step1->mask);
    const bool leaf = plan_->steps.size() == 1;

    for (int32_t block_end = end; block_end > begin;) {
      const int32_t block_begin = std::max(begin, block_end - kBlock);
      const int32_t n = block_end - block_begin;
      // Resource checkpoint once per 64-row block: one relaxed fetch_add
      // amortized over the whole block's filter/gather/probe work.
      if (ctx_ != nullptr && !ctx_->Checkpoint("engine", n).ok()) return;
      uint64_t sel =
          n == kBlock ? ~uint64_t{0} : (uint64_t{1} << n) - uint64_t{1};
      for (const ScanEq& eq : plan_->scan_eqs) {
        const ConstId* a = scan.ColumnData(eq.column) + block_begin;
        const ConstId* b = scan.ColumnData(eq.eq_column) + block_begin;
        uint64_t keep = 0;
        for (int32_t i = 0; i < n; ++i) {
          keep |= uint64_t{a[i] == b[i]} << i;
        }
        sel &= keep;
      }
      if (sel != 0) {
        for (size_t slot = 0; slot < num_binds; ++slot) {
          const ConstId* column =
              scan.ColumnData(plan_->scan_binds[slot].column) + block_begin;
          ConstId* out = block_binds_.data() + slot * kBlock;
          for (int32_t i = 0; i < n; ++i) out[i] = column[i];
        }
        if (fused) {
          ConstId* pattern = pattern_.data();
          for (uint64_t bits = sel; bits != 0; bits &= bits - 1) {
            const int32_t i = std::countr_zero(bits);
            for (const KeySource& source : plan_->fused_key) {
              pattern[source.pattern_column] =
                  source.from_const
                      ? source.value
                      : block_binds_[source.bind_slot * kBlock + i];
            }
            block_hashes_[i] =
                probe_relation->ProbeKey(step1->mask, pattern);
            probe_relation->PrefetchProbe(probe_ref, block_hashes_[i]);
          }
          if (inner_static_) {
            // Static inner relation: resolve every chain head of the block
            // before walking any chain (the slot lines are in flight from
            // the prefetch above), and prefetch each head row. By the time
            // the resolve loop reaches a row, its chain link and column
            // entries are usually resident.
            for (uint64_t bits = sel; bits != 0; bits &= bits - 1) {
              const int32_t i = std::countr_zero(bits);
              const int32_t head =
                  probe_relation->ProbeChainHead(probe_ref, block_hashes_[i]);
              block_heads_[i] = head;
              if (head >= 0) {
                probe_relation->PrefetchChainRow(probe_ref, head);
              }
            }
          }
        }
        for (uint64_t bits = sel; bits != 0;) {
          const int32_t i = 63 - std::countl_zero(bits);
          bits &= ~(uint64_t{1} << i);
          if (stop_->load(std::memory_order_relaxed)) return;
          for (size_t slot = 0; slot < num_binds; ++slot) {
            binding_[plan_->scan_binds[slot].var] =
                block_binds_[slot * kBlock + i];
          }
          if (leaf) {
            EmitMatch();
          } else if (fused) {
            // Manual chain walk with one-candidate-ahead prefetch: the
            // next link and the candidate's column entries are requested
            // while the current candidate is processed, hiding the
            // pointer-chase latency of long chains. Chain links are
            // immutable once written (new rows prepend at heads), so
            // reading the link before recursing is safe even when the
            // recursion inserts into the probed relation.
            int32_t row =
                inner_static_
                    ? block_heads_[i]
                    : probe_relation->ProbeChainHead(probe_ref,
                                                     block_hashes_[i]);
            while (row >= 0) {
              const int32_t ahead =
                  probe_relation->NextInChain(probe_ref, row);
              if (ahead >= 0) {
                probe_relation->PrefetchChainRow(probe_ref, ahead);
              }
              MatchRow(*step1, *probe_relation, row);
              row = ahead;
            }
          } else {
            Join(1);
          }
        }
      }
      block_end = block_begin;
    }
  }

  /// Checks row `row` against `step`'s actions (binding fresh variables),
  /// recurses on a match, then unbinds this step's variables. Variables are
  /// statically owned by the step that binds them, so unconditionally
  /// unbinding the step's kBindVar set is exact.
  void MatchRow(const JoinStep& step, const Relation& relation, int32_t row) {
    if (stop_->load(std::memory_order_relaxed)) return;
    const size_t depth = static_cast<size_t>(&step - plan_->steps.data());
    bool match = true;
    int32_t column = 0;
    for (int32_t a = step.actions_begin; match && a < step.actions_end;
         ++a, ++column) {
      const ArgAction& action = plan_->actions[a];
      switch (action.kind) {
        case ArgAction::kConst:
          match = relation.At(row, column) == action.index;
          break;
        case ArgAction::kCheckVar:
          match = relation.At(row, column) == binding_[action.index];
          break;
        case ArgAction::kBindVar:
          binding_[action.index] = relation.At(row, column);
          break;
        case ArgAction::kConstKey:
        case ArgAction::kVarKey:
          break;
      }
    }
    if (match) Join(depth + 1);
    for (int32_t a = step.actions_begin; a < step.actions_end; ++a) {
      if (plan_->actions[a].kind == ArgAction::kBindVar) {
        binding_[plan_->actions[a].index] = -1;
      }
    }
  }

  const std::vector<Relation>& relations_;
  const CompiledPlan* plan_ = nullptr;
  const Relation* delta_ = nullptr;
  int32_t range_begin_ = -1;
  int32_t range_end_ = -1;
  const Sink* sink_ = nullptr;
  int64_t* applications_ = nullptr;
  const std::atomic<bool>* stop_ = nullptr;
  ExecutionContext* ctx_ = nullptr;

  // Hot-path scratch: variable bindings, probe pattern, ground-atom buffer,
  // and the vector kernel's per-block gathered binds and probe hashes.
  std::vector<ConstId> binding_;
  std::vector<ConstId> pattern_;
  std::vector<ConstId> scratch_;
  std::vector<ConstId> block_binds_;
  uint64_t block_hashes_[kBlock] = {};
  int32_t block_heads_[kBlock] = {};
  bool inner_static_ = false;
};

/// One (rule, delta-literal) evaluation of a fixpoint round. Jobs within a
/// round are independent (they only read the published relations) and are
/// what the thread pool fans out.
struct RoundJob {
  int32_t rule = -1;
  int32_t delta_literal = -1;
  // Resolved at dispatch time in parallel mode (plans must be finished and
  // their probe indexes materialized before the fan-out); left null in
  // serial mode, where the plan is resolved at execution time so its
  // selectivity snapshot sees the tuples earlier jobs of the same round
  // already published (e.g. round 0 of transitive closure compiles the
  // recursive rule after the base rule filled the head relation — the
  // order that lets a chain close in one pass).
  const CompiledPlan* plan = nullptr;
  PredId head = -1;
  // The delta literal's source relation (deltas are row ranges of the
  // global relation, never copies); null for full-evaluation jobs.
  const Relation* delta_relation = nullptr;
  // Step-0 row range this job covers: the delta range for delta jobs,
  // a shard of the outer scan for sharded jobs, (-1, -1) = everything.
  // Direct-scan jobs over large row ranges are split into one job per
  // shard, which is what parallelizes rounds dominated by a single rule
  // (the transitive-closure shape: one recursive rule, one big delta).
  int32_t range_begin = -1;
  int32_t range_end = -1;
};

/// Materializes every index `plan` will touch (hash indexes for chained
/// probes, sorted-key indexes for merge steps) so the parallel fan-out
/// performs no lazy index construction (Relation::Probe / ProbeSorted
/// would otherwise mutate the shared relation from worker threads). A
/// direct-scan plan's first step reads the columns, not an index.
void PrewarmPlanIndexes(const CompiledPlan& plan,
                        const Relation* delta_relation) {
  for (size_t i = plan.direct_scan ? 1 : 0; i < plan.steps.size(); ++i) {
    const JoinStep& step = plan.steps[i];
    const Relation* relation =
        step.relation != nullptr ? step.relation : delta_relation;
    if (step.merge) {
      relation->EnsureSortedIndex(step.mask);
    } else {
      relation->EnsureProbeIndex(step.mask);
    }
  }
}

/// True when some non-first join step of `plan` reads `head` — i.e. tuples
/// this rule derives can feed its own join within one execution (the
/// transitive-closure round-0 shape). Feedback-free executions may buffer
/// derived tuples and flush them in batches; feedback executions must
/// insert immediately so the still-running join observes them (what lets a
/// chain close in one pass). Step 0 never feeds back: direct scans and
/// probes are both bounded at entry (see RuleEvaluator::Execute).
bool PlanFeedsBack(const CompiledPlan& plan, const Relation* head) {
  for (size_t i = 1; i < plan.steps.size(); ++i) {
    if (plan.steps[i].relation == head) return true;
  }
  return false;
}

}  // namespace

Result<Database> EvaluateStratified(const Program& program,
                                    const Database& database,
                                    const EngineOptions& options,
                                    EngineStats* stats) {
  // The Database overload is a thin shim over the borrowed-span path: the
  // per-predicate arenas are already in the span layout, so borrowing them
  // costs one pointer per predicate.
  TIEBREAK_CHECK_EQ(program.num_predicates(), database.num_predicates())
      << "database was built for a different program";
  std::vector<FactSpan> facts(program.num_predicates());
  for (PredId p = 0; p < program.num_predicates(); ++p) {
    facts[p] = database.Facts(p);
  }
  return EvaluateStratified(
      program, Span<const FactSpan>(facts.data(), facts.size()), options,
      stats);
}

Result<Database> EvaluateStratified(const Program& program,
                                    Span<const FactSpan> facts,
                                    const EngineOptions& options,
                                    EngineStats* stats) {
  TIEBREAK_CHECK_EQ(static_cast<int32_t>(facts.size()),
                    program.num_predicates())
      << "one FactSpan per predicate required";
  Status safety = CheckSafety(program);
  if (!safety.ok()) return safety;
  const auto strata = ComputeStrata(program);
  if (!strata.has_value()) {
    return Status::FailedPrecondition(
        "program is not stratified; use the ground-graph interpreters");
  }
  EngineStats local_stats;
  if (stats == nullptr) stats = &local_stats;

  const int32_t num_preds = program.num_predicates();
  // Probe masks are 32-bit column sets, so the set-at-a-time engine caps
  // arity at kEngineMaxArity (the ground-graph interpreters in core/ have
  // no such cap).
  for (PredId p = 0; p < num_preds; ++p) {
    if (program.predicate(p).arity > kEngineMaxArity) {
      return Status::InvalidArgument(
          "predicate " + program.predicate_name(p) + " has arity > " +
          std::to_string(kEngineMaxArity) +
          "; the relational engine supports at most " +
          std::to_string(kEngineMaxArity));
    }
  }
  std::vector<Relation> relations;
  relations.reserve(num_preds);
  for (PredId p = 0; p < num_preds; ++p) {
    relations.emplace_back(program.predicate(p).arity);
  }

  const int32_t num_threads = ThreadPool::EffectiveThreads(options.num_threads);
  stats->threads_used = num_threads;
  const bool parallel = num_threads > 1;
  std::unique_ptr<ThreadPool> pool;
  if (parallel) pool = std::make_unique<ThreadPool>(num_threads);

  // Resource governance: the entry checkpoint makes an already-tripped
  // context (pre-cancelled, pre-expired deadline) fail here, before any
  // work, identically for every thread count.
  ExecutionContext* const ctx = options.context;
  if (ctx != nullptr) {
    Status entry = ctx->Checkpoint("engine", 1);
    if (!entry.ok()) return entry;
  }

  // EDB load: stream every borrowed fact span into its columns. The source
  // spans are sorted and duplicate-free, so the uniqueness-exploiting bulk
  // path applies (no membership checks, prefetch-pipelined fingerprint
  // stores). Per-predicate loads are independent — with a pool they fan
  // out as one task per predicate.
  auto load_predicate = [&](PredId p) {
    const int64_t rows = facts[p].rows;
    Relation& relation = relations[p];
    relation.Reserve(rows);
    if (rows == 0) return;
    if (program.predicate(p).arity == 0) {
      TIEBREAK_CHECK_EQ(rows, 1) << "arity-0 span with more than one row";
      const Tuple empty;
      relation.Insert(empty);
      return;
    }
    // The span rows are already one flat, sorted, duplicate-free row-major
    // arena — exactly the uniqueness-exploiting bulk path's input format,
    // with no flattening copy.
    relation.InsertUniqueBulk(facts[p].data, rows);
  };
  if (parallel) {
    pool->ParallelFor(num_preds,
                      [&](int32_t task, int32_t) { load_predicate(task); },
                      ctx);
  } else {
    for (PredId p = 0; p < num_preds; ++p) load_predicate(p);
  }
  int64_t total_tuples = 0;
  for (PredId p = 0; p < num_preds; ++p) total_tuples += relations[p].size();
  if (ctx != nullptr) {
    int64_t edb_bytes = 0;
    for (PredId p = 0; p < num_preds; ++p) {
      edb_bytes += relations[p].size() *
                   std::max<int64_t>(program.predicate(p).arity, 1) *
                   static_cast<int64_t>(sizeof(ConstId));
    }
    Status loaded = ctx->ChargeBytes("engine", edb_bytes);
    if (!loaded.ok()) return loaded;
  }

  int32_t max_stratum = 0;
  for (PredId p = 0; p < num_preds; ++p) {
    max_stratum = std::max(max_stratum, (*strata)[p]);
  }
  stats->strata = max_stratum + 1;

  // Deltas are row ranges, not copies: relations only ever append with
  // stable row ids, so "the tuples predicate p gained last round" is
  // exactly rows [delta_begin[p], delta_end[p]) of relations[p]. Fixpoint
  // rounds therefore maintain no second tuple store at all — they snapshot
  // sizes at round barriers.
  std::vector<int64_t> delta_begin(num_preds, 0);
  std::vector<int64_t> delta_end(num_preds, 0);

  PlanCache plans(program, relations, options);
  RuleEvaluator serial_evaluator(relations);

  // Parallel-mode state: one evaluator + one per-predicate staging bank +
  // one sink buffer per worker, and per-worker counters merged at
  // barriers.
  std::vector<RuleEvaluator> worker_evaluators;
  std::vector<std::vector<Relation>> staging;
  std::vector<int64_t> worker_applications;
  std::vector<int64_t> worker_staged;  // staged rows this round, per worker
  std::vector<double> worker_busy_seconds;
  std::vector<std::vector<ConstId>> worker_sink_buffers;
  std::vector<std::vector<uint64_t>> worker_fp_buffers;
  if (parallel) {
    worker_evaluators.reserve(num_threads);
    for (int32_t w = 0; w < num_threads; ++w) {
      worker_evaluators.emplace_back(relations);
    }
    staging.resize(num_threads);
    for (int32_t w = 0; w < num_threads; ++w) {
      staging[w].reserve(num_preds);
      for (PredId p = 0; p < num_preds; ++p) {
        staging[w].emplace_back(program.predicate(p).arity);
      }
    }
    worker_applications.assign(num_threads, 0);
    worker_staged.assign(num_threads, 0);
    worker_busy_seconds.assign(num_threads, 0.0);
    worker_sink_buffers.resize(num_threads);
    worker_fp_buffers.resize(num_threads);
  }
  // Serial-mode batched-sink scratch (reused across jobs).
  std::vector<ConstId> serial_sink_buffer;

  Status overflow = Status::Ok();
  // Cooperative abort for the tuple budget: sinks set it on overflow and
  // every evaluator polls it, so no job (and in parallel mode no worker's
  // staging bank) runs far past max_tuples before the round ends.
  std::atomic<bool> stop{false};

  // Runs one round's jobs and publishes new tuples into `relations`; the
  // published rows land at the end of each relation's columns, which is
  // what makes them the next round's delta ranges.
  //
  // Serial: derived tuples become visible to later jobs of the same round
  // — immediately (per-tuple insert) for feedback plans, at the end of the
  // producing job (batched flush) otherwise. Parallel: workers stage
  // derivations privately while all shared relations stay read-only; at
  // the barrier the coordinating thread merges each stage with
  // Relation::BulkInsert, which re-checks every staged row against the
  // fingerprint table (the cross-worker dedupe; the stage already
  // pre-filtered against the published state) and extends every probe
  // index once per merged stage. Both converge to the same least fixpoint.
  auto run_round = [&](const std::vector<RoundJob>& jobs) -> Status {
    // Per-round checkpoint: catches trips between rounds (and charges the
    // round's dispatch overhead) even when every job is tiny.
    if (ctx != nullptr) {
      Status round_entry =
          ctx->Checkpoint("engine", 1 + static_cast<int64_t>(jobs.size()));
      if (!round_entry.ok()) return round_entry;
    }
    if (!parallel) {
      for (const RoundJob& job : jobs) {
        const int64_t delta_size =
            job.delta_relation != nullptr ? job.range_end - job.range_begin
                                          : 0;
        const CompiledPlan& plan =
            plans.Get(job.rule, job.delta_literal, delta_size, stats);
        Relation& head = relations[job.head];
        const int32_t head_arity = head.arity();
        const bool batch_sink = options.kernel != JoinKernel::kRow &&
                                head_arity > 0 &&
                                !PlanFeedsBack(plan, &head);
        if (batch_sink) {
          serial_sink_buffer.clear();
          int64_t buffered = 0;
          auto flush = [&] {
            if (buffered == 0) return;
            const int64_t added =
                head.InsertBatch(serial_sink_buffer.data(), buffered);
            stats->tuples_derived += added;
            total_tuples += added;
            if (total_tuples > options.max_tuples) {
              overflow = Status::ResourceExhausted("tuple budget exceeded");
              stop.store(true, std::memory_order_relaxed);
            }
            if (ctx != nullptr && added > 0) {
              Status charge = ctx->ChargeBytes(
                  "engine", added * head_arity *
                                static_cast<int64_t>(sizeof(ConstId)));
              if (!charge.ok()) stop.store(true, std::memory_order_relaxed);
            }
            serial_sink_buffer.clear();
            buffered = 0;
          };
          auto sink = [&](const ConstId* values) {
            serial_sink_buffer.insert(serial_sink_buffer.end(), values,
                                      values + head_arity);
            if (++buffered >= kSinkBlockRows) flush();
          };
          serial_evaluator.Execute(plan, options.kernel, job.delta_relation,
                                   job.range_begin, job.range_end,
                                   /*inner_static=*/true, sink,
                                   &stats->rule_applications, &stop, ctx);
          flush();
        } else {
          int64_t job_bytes = 0;
          auto sink = [&](const ConstId* values) {
            if (head.Insert(values)) {
              ++stats->tuples_derived;
              job_bytes += head_arity * static_cast<int64_t>(sizeof(ConstId));
              if (++total_tuples > options.max_tuples) {
                overflow = Status::ResourceExhausted("tuple budget exceeded");
                stop.store(true, std::memory_order_relaxed);
              }
            }
          };
          serial_evaluator.Execute(plan, options.kernel, job.delta_relation,
                                   job.range_begin, job.range_end,
                                   !PlanFeedsBack(plan, &head), sink,
                                   &stats->rule_applications, &stop, ctx);
          if (ctx != nullptr && job_bytes > 0) {
            Status charge = ctx->ChargeBytes("engine", job_bytes);
            if (!charge.ok()) stop.store(true, std::memory_order_relaxed);
          }
        }
        if (!overflow.ok()) return overflow;
        if (ctx != nullptr && ctx->stopped()) return ctx->status();
      }
      return Status::Ok();
    }
    // Budget guard for the fan-out: a worker whose staged-row count alone
    // would blow the remaining budget trips `stop`, and every worker polls
    // it — so staging memory stays bounded by threads × remaining budget
    // even for a single cross-product round. (Conservative: cross-worker
    // duplicates could merge to fewer rows; the barrier re-checks the real
    // total and is the authority.)
    const int64_t round_budget =
        std::max<int64_t>(options.max_tuples - total_tuples, 0);
    std::fill(worker_staged.begin(), worker_staged.end(), 0);
    auto body = [&](int32_t task, int32_t worker) {
      const RoundJob& job = jobs[task];
      WallTimer busy;
      Relation& stage = staging[worker][job.head];
      const Relation& published = relations[job.head];
      int64_t& staged = worker_staged[worker];
      const int32_t head_arity = published.arity();
      // Stages a row: pre-filter against the published relation (read-only;
      // dedupes most rediscoveries), then stage; the barrier merge is the
      // authority on cross-worker duplicates. One fingerprint serves both
      // tables.
      auto stage_row = [&](const ConstId* values, uint64_t fingerprint) {
        if (!published.Contains(values, fingerprint) &&
            stage.Insert(values, fingerprint)) {
          if (++staged > round_budget) {
            stop.store(true, std::memory_order_relaxed);
          }
        }
      };
      if (options.kernel != JoinKernel::kRow && head_arity > 0) {
        // Batched staging: buffer a block, hash it, prefetch the published
        // dedupe slots, then stage — same visibility (none until the
        // barrier), better pipelining.
        std::vector<ConstId>& buffer = worker_sink_buffers[worker];
        std::vector<uint64_t>& fps = worker_fp_buffers[worker];
        buffer.clear();
        int64_t buffered = 0;
        auto flush = [&] {
          if (buffered == 0) return;
          fps.resize(static_cast<size_t>(buffered));
          for (int64_t r = 0; r < buffered; ++r) {
            fps[r] =
                published.TupleFingerprint(buffer.data() + r * head_arity);
          }
          for (int64_t r = 0; r < buffered; ++r) {
            if (r + 8 < buffered) published.PrefetchDedupe(fps[r + 8]);
            stage_row(buffer.data() + r * head_arity, fps[r]);
          }
          buffer.clear();
          buffered = 0;
        };
        auto sink = [&](const ConstId* values) {
          buffer.insert(buffer.end(), values, values + head_arity);
          if (++buffered >= kSinkBlockRows) flush();
        };
        worker_evaluators[worker].Execute(
            *job.plan, options.kernel, job.delta_relation, job.range_begin,
            job.range_end, /*inner_static=*/true, sink,
            &worker_applications[worker], &stop, ctx);
        flush();
      } else {
        auto sink = [&](const ConstId* values) {
          stage_row(values, published.TupleFingerprint(values));
        };
        worker_evaluators[worker].Execute(
            *job.plan, options.kernel, job.delta_relation, job.range_begin,
            job.range_end, /*inner_static=*/true, sink,
            &worker_applications[worker], &stop, ctx);
      }
      worker_busy_seconds[worker] += busy.Seconds();
    };
    pool->ParallelFor(static_cast<int32_t>(jobs.size()), body, ctx);
    for (int32_t w = 0; w < num_threads; ++w) {
      stats->rule_applications += worker_applications[w];
      worker_applications[w] = 0;
    }
    // Barrier merge, on the coordinating thread: one BulkInsert per
    // non-empty worker stage (so up to num_threads merges — and index
    // passes — per predicate per round).
    int64_t merged_bytes = 0;
    for (PredId p = 0; p < num_preds; ++p) {
      for (int32_t w = 0; w < num_threads; ++w) {
        Relation& stage = staging[w][p];
        if (stage.empty()) continue;
        const int64_t added = relations[p].BulkInsert(stage);
        stats->tuples_derived += added;
        total_tuples += added;
        merged_bytes += added * relations[p].arity() *
                        static_cast<int64_t>(sizeof(ConstId));
        stage.Clear();
      }
    }
    if (total_tuples > options.max_tuples) {
      return Status::ResourceExhausted("tuple budget exceeded");
    }
    // Byte accounting at the barrier: every worker stage has been merged
    // (the relations are in a valid published state), so a trip here
    // unwinds cleanly between rounds. Charging only merged (deduplicated)
    // rows keeps the charge equal across thread counts — the least
    // fixpoint is a set, so its byte total is schedule-independent.
    if (ctx != nullptr) {
      if (merged_bytes > 0) {
        Status charge = ctx->ChargeBytes("engine", merged_bytes);
        if (!charge.ok()) return charge;
      }
      if (ctx->stopped()) return ctx->status();
    }
    return Status::Ok();
  };

  for (int32_t stratum = 0; stratum <= max_stratum; ++stratum) {
    std::vector<int32_t> stratum_rules;
    for (int32_t r = 0; r < program.num_rules(); ++r) {
      if ((*strata)[program.rule(r).head.predicate] == stratum) {
        stratum_rules.push_back(r);
      }
    }
    if (stratum_rules.empty()) continue;

    WallTimer stratum_timer;
    const int64_t stratum_tuples_before = stats->tuples_derived;
    const int32_t stratum_iterations_before = stats->iterations;
    if (parallel) {
      std::fill(worker_busy_seconds.begin(), worker_busy_seconds.end(), 0.0);
    }

    // Which body literals are recursive (positive, IDB, same stratum)?
    auto recursive_literals = [&](const Rule& rule) {
      std::vector<int32_t> result;
      for (int32_t b = 0; b < static_cast<int32_t>(rule.body.size()); ++b) {
        const Literal& lit = rule.body[b];
        if (lit.positive && !program.IsEdb(lit.atom.predicate) &&
            (*strata)[lit.atom.predicate] == stratum) {
          result.push_back(b);
        }
      }
      return result;
    };

    std::vector<RoundJob> jobs;
    // Builds the jobs for one (rule, delta-literal) evaluation. Parallel
    // mode compiles/refreshes the plan now, pre-materializes the indexes
    // it will read, and splits direct-scan plans with a large step-0 row
    // range into one job per shard; serial mode defers plan resolution to
    // execution time (see RoundJob::plan).
    constexpr int32_t kMinRowsPerShard = 1024;
    auto push_job = [&](int32_t r, int32_t delta_literal,
                        const Relation* delta_relation, int64_t range_begin,
                        int64_t range_end) {
      RoundJob job;
      job.rule = r;
      job.delta_literal = delta_literal;
      job.head = program.rule(r).head.predicate;
      job.delta_relation = delta_relation;
      job.range_begin = static_cast<int32_t>(range_begin);
      job.range_end = static_cast<int32_t>(range_end);
      if (parallel) {
        const int64_t delta_size =
            delta_relation != nullptr ? range_end - range_begin : 0;
        job.plan = &plans.Get(r, delta_literal, delta_size, stats);
        PrewarmPlanIndexes(*job.plan, delta_relation);
        if (job.plan->direct_scan) {
          const JoinStep& outer = job.plan->steps.front();
          const int64_t begin = range_begin >= 0 ? range_begin : 0;
          const int64_t end =
              range_end >= 0
                  ? range_end
                  : (outer.relation != nullptr ? outer.relation->size()
                                               : delta_relation->size());
          const int64_t rows = end - begin;
          // 2x threads many shards (capped by a minimum shard size): the
          // pool's atomic task claiming then rebalances uneven shards.
          const int64_t shards =
              std::min<int64_t>(2 * num_threads, rows / kMinRowsPerShard);
          if (shards > 1) {
            for (int64_t s = 0; s < shards; ++s) {
              job.range_begin = static_cast<int32_t>(begin + s * rows / shards);
              job.range_end =
                  static_cast<int32_t>(begin + (s + 1) * rows / shards);
              jobs.push_back(job);
            }
            return;
          }
        }
      }
      jobs.push_back(job);
    };

    // The stratum starts with empty deltas; every round barrier advances
    // them to "the rows this round appended".
    auto advance_deltas = [&] {
      for (PredId p = 0; p < num_preds; ++p) {
        delta_begin[p] = delta_end[p];
        delta_end[p] = relations[p].size();
      }
    };
    for (PredId p = 0; p < num_preds; ++p) {
      delta_end[p] = relations[p].size();
    }

    // Round 0: full evaluation of every stratum rule.
    ++stats->iterations;
    jobs.clear();
    for (int32_t r : stratum_rules) push_job(r, -1, nullptr, -1, -1);
    Status round = run_round(jobs);
    if (!round.ok()) return round;
    advance_deltas();

    // Fixpoint rounds.
    while (true) {
      bool delta_empty = true;
      for (PredId p = 0; p < num_preds; ++p) {
        delta_empty = delta_empty && delta_begin[p] == delta_end[p];
      }
      if (delta_empty) break;
      ++stats->iterations;
      jobs.clear();
      for (int32_t r : stratum_rules) {
        const Rule& rule = program.rule(r);
        if (options.semi_naive) {
          // One job per recursive literal, that literal restricted to the
          // delta range of its predicate.
          for (int32_t b : recursive_literals(rule)) {
            const PredId pred = rule.body[b].atom.predicate;
            if (delta_begin[pred] == delta_end[pred]) continue;
            push_job(r, b, &relations[pred], delta_begin[pred],
                     delta_end[pred]);
          }
        } else {
          if (recursive_literals(rule).empty()) continue;
          push_job(r, -1, nullptr, -1, -1);
        }
      }
      round = run_round(jobs);
      if (!round.ok()) return round;
      advance_deltas();
    }

    StratumStats stratum_stats;
    stratum_stats.stratum = stratum;
    stratum_stats.iterations = stats->iterations - stratum_iterations_before;
    stratum_stats.tuples_derived =
        stats->tuples_derived - stratum_tuples_before;
    stratum_stats.seconds = stratum_timer.Seconds();
    if (parallel && stratum_stats.seconds > 0) {
      double busy = 0;
      for (double b : worker_busy_seconds) busy += b;
      stratum_stats.utilization =
          busy / (stratum_stats.seconds * num_threads);
    }
    stats->per_stratum.push_back(stratum_stats);
  }

  // Materialize the result database through the flat bulk loader: relation
  // rows are already unique, so each predicate is one row-major gather
  // handed to Database::BulkLoadFlat, which owns the sorting (packed-word
  // sorts for arity <= 2, a row-id permutation above) and the linear set
  // build — no Tuple heap allocation anywhere. EDB relations skip even the
  // gather: no rule writes them, so the input arena passes through as a
  // verbatim (already sorted, duplicate-free) copy.
  if (ctx != nullptr) {
    Status final_check = ctx->CheckNow("engine");
    if (!final_check.ok()) return final_check;
  }
  Database result(program);
  std::vector<ConstId> flat;
  for (PredId p = 0; p < num_preds; ++p) {
    const Relation& rel = relations[p];
    const int32_t arity = rel.arity();
    const int64_t rows = rel.size();
    if (rows == 0) continue;
    if (program.IsEdb(p) && !options.materialize_edb) continue;
    if (arity == 0) {
      result.InsertProposition(p);
      continue;
    }
    flat.clear();
    flat.reserve(static_cast<size_t>(rows) * arity);
    if (program.IsEdb(p)) {
      const ConstId* data = facts[p].data;
      flat.assign(data, data + rows * arity);
    } else {
      for (int64_t row = 0; row < rows; ++row) {
        for (int32_t c = 0; c < arity; ++c) {
          flat.push_back(rel.At(static_cast<int32_t>(row), c));
        }
      }
    }
    result.BulkLoadFlat(p, std::move(flat));
  }
  return result;
}

}  // namespace tiebreak
