#include "engine/relation.h"

#include <algorithm>

namespace tiebreak {

namespace {
constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;
constexpr uint64_t kGolden = 0x9E3779B97F4A7C15ULL;
constexpr int32_t kInitialSlots = 16;  // power of two
}  // namespace

uint64_t Relation::FingerprintOf(const ConstId* values, int32_t count) {
  uint64_t h = kFnvOffset;
  for (int32_t i = 0; i < count; ++i) {
    h ^= static_cast<uint64_t>(values[i]) + kGolden;
    h *= kFnvPrime;
  }
  return h;
}

uint64_t Relation::KeyHashOf(uint32_t mask, const ConstId* values) {
  uint64_t h = kFnvOffset ^ mask;
  for (uint32_t bits = mask; bits != 0; bits &= bits - 1) {
    const int32_t i = __builtin_ctz(bits);
    h ^= static_cast<uint64_t>(values[i]) + kGolden;
    h *= kFnvPrime;
  }
  return h;
}

int32_t Relation::FindRow(const ConstId* values, uint64_t fingerprint) const {
  if (dedupe_slots_.empty()) return -1;
  const size_t slot_mask = dedupe_slots_.size() - 1;
  for (size_t slot = fingerprint & slot_mask;; slot = (slot + 1) & slot_mask) {
    const int32_t row = dedupe_slots_[slot];
    if (row < 0) return -1;
    if (std::equal(values, values + arity_, Row(row))) return row;
  }
}

void Relation::GrowDedupe() {
  RehashDedupe(dedupe_slots_.empty() ? kInitialSlots : dedupe_slots_.size() * 2);
}

void Relation::RehashDedupe(size_t new_capacity) {
  std::vector<int32_t> fresh(new_capacity, -1);
  const size_t slot_mask = new_capacity - 1;
  for (int32_t row = 0; row < num_rows_; ++row) {
    const uint64_t fp = FingerprintOf(Row(row), arity_);
    size_t slot = fp & slot_mask;
    while (fresh[slot] >= 0) slot = (slot + 1) & slot_mask;
    fresh[slot] = row;
  }
  dedupe_slots_ = std::move(fresh);
}

bool Relation::Insert(const ConstId* values, uint64_t fingerprint) {
  if (dedupe_slots_.empty() ||
      static_cast<size_t>(num_rows_ + 1) * 2 > dedupe_slots_.size()) {
    GrowDedupe();
  }
  const size_t slot_mask = dedupe_slots_.size() - 1;
  size_t slot = fingerprint & slot_mask;
  while (dedupe_slots_[slot] >= 0) {
    if (std::equal(values, values + arity_, Row(dedupe_slots_[slot]))) {
      return false;
    }
    slot = (slot + 1) & slot_mask;
  }
  const int32_t row = num_rows_++;
  dedupe_slots_[slot] = row;
  data_.insert(data_.end(), values, values + arity_);
  for (ProbeIndex& index : indexes_) AppendToIndex(&index, row);
  return true;
}

namespace {
// Smallest power of two >= max(bound, kInitialSlots).
size_t PowerOfTwoAtLeast(size_t bound) {
  size_t capacity = kInitialSlots;
  while (capacity < bound) capacity *= 2;
  return capacity;
}
}  // namespace

void Relation::Reserve(int64_t num_rows) {
  TIEBREAK_CHECK_GE(num_rows, 0);
  data_.reserve(static_cast<size_t>(num_rows) * arity_);
  const size_t wanted = PowerOfTwoAtLeast(static_cast<size_t>(num_rows) * 2);
  if (dedupe_slots_.size() < wanted) RehashDedupe(wanted);
}

int64_t Relation::BulkInsert(const Relation& staged) {
  TIEBREAK_CHECK_EQ(staged.arity_, arity_);
  const int32_t first_new = num_rows_;
  // One capacity decision for the whole batch: size the dedupe table for
  // the worst case (every staged row new) so the scan never rehashes.
  const size_t wanted = PowerOfTwoAtLeast(
      static_cast<size_t>(num_rows_ + staged.num_rows_ + 1) * 2);
  if (dedupe_slots_.size() < wanted) RehashDedupe(wanted);
  const size_t slot_mask = dedupe_slots_.size() - 1;
  for (int32_t r = 0; r < staged.num_rows_; ++r) {
    const ConstId* values = staged.Row(r);
    const uint64_t fp = FingerprintOf(values, arity_);
    size_t slot = fp & slot_mask;
    bool duplicate = false;
    while (dedupe_slots_[slot] >= 0) {
      if (std::equal(values, values + arity_, Row(dedupe_slots_[slot]))) {
        duplicate = true;
        break;
      }
      slot = (slot + 1) & slot_mask;
    }
    if (duplicate) continue;
    dedupe_slots_[slot] = num_rows_++;
    data_.insert(data_.end(), values, values + arity_);
  }
  // Publish to the probe indexes: each index is extended once with the
  // whole batch of new rows (not per tuple). Chains only ever prepend at
  // slot heads, so MatchRange walks opened before this publish are
  // unaffected.
  for (ProbeIndex& index : indexes_) {
    index.next.reserve(num_rows_);
    for (int32_t row = first_new; row < num_rows_; ++row) {
      AppendToIndex(&index, row);
    }
  }
  return num_rows_ - first_new;
}

void Relation::Clear() {
  num_rows_ = 0;
  data_.clear();
  std::fill(dedupe_slots_.begin(), dedupe_slots_.end(), -1);
  // Keep the materialized index shells (mask + vector capacity): recycled
  // staging relations re-probe the same masks every fixpoint round, and
  // retaining the shells keeps those rounds allocation-free steady-state.
  // slot_keys can stay stale — entries are only read where slot_heads >= 0.
  for (ProbeIndex& index : indexes_) {
    index.next.clear();
    std::fill(index.slot_heads.begin(), index.slot_heads.end(), -1);
    index.used_slots = 0;
  }
}

void Relation::GrowIndexSlots(ProbeIndex* index) {
  const size_t new_capacity =
      index->slot_heads.empty() ? kInitialSlots : index->slot_heads.size() * 2;
  std::vector<uint64_t> keys(new_capacity, 0);
  std::vector<int32_t> heads(new_capacity, -1);
  const size_t slot_mask = new_capacity - 1;
  // Chains move wholesale: rehashing touches only the slot table, never the
  // `next` links, so live MatchRange walks are unaffected.
  for (size_t old_slot = 0; old_slot < index->slot_heads.size(); ++old_slot) {
    if (index->slot_heads[old_slot] < 0) continue;
    const uint64_t key = index->slot_keys[old_slot];
    size_t slot = key & slot_mask;
    while (heads[slot] >= 0) slot = (slot + 1) & slot_mask;
    keys[slot] = key;
    heads[slot] = index->slot_heads[old_slot];
  }
  index->slot_keys = std::move(keys);
  index->slot_heads = std::move(heads);
}

void Relation::AppendToIndex(ProbeIndex* index, int32_t row) const {
  if (index->slot_heads.empty() ||
      static_cast<size_t>(index->used_slots + 1) * 2 >
          index->slot_heads.size()) {
    GrowIndexSlots(index);
  }
  const uint64_t key = KeyHashOf(index->mask, Row(row));
  const size_t slot_mask = index->slot_heads.size() - 1;
  size_t slot = key & slot_mask;
  while (index->slot_heads[slot] >= 0 && index->slot_keys[slot] != key) {
    slot = (slot + 1) & slot_mask;
  }
  index->next.push_back(index->slot_heads[slot] >= 0 ? index->slot_heads[slot]
                                                     : -1);
  if (index->slot_heads[slot] < 0) {
    index->slot_keys[slot] = key;
    ++index->used_slots;
  }
  index->slot_heads[slot] = row;
}

Relation::ProbeIndex& Relation::EnsureIndex(uint32_t mask) const {
  for (ProbeIndex& index : indexes_) {
    if (index.mask == mask) return index;
  }
  ProbeIndex& index = indexes_.emplace_back();
  index.mask = mask;
  index.next.reserve(num_rows_);
  for (int32_t row = 0; row < num_rows_; ++row) AppendToIndex(&index, row);
  return index;
}

Relation::MatchRange Relation::Probe(uint32_t mask,
                                     const ConstId* pattern) const {
  const ProbeIndex& index = EnsureIndex(mask);
  const int32_t index_pos = static_cast<int32_t>(&index - indexes_.data());
  if (index.slot_heads.empty()) return MatchRange(this, index_pos, -1);
  const uint64_t key = KeyHashOf(mask, pattern);
  const size_t slot_mask = index.slot_heads.size() - 1;
  size_t slot = key & slot_mask;
  while (index.slot_heads[slot] >= 0 && index.slot_keys[slot] != key) {
    slot = (slot + 1) & slot_mask;
  }
  return MatchRange(this, index_pos, index.slot_heads[slot]);
}

}  // namespace tiebreak
