#include "engine/relation.h"

#include <algorithm>
#include <bit>

namespace tiebreak {

namespace {
constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;
constexpr uint64_t kGolden = 0x9E3779B97F4A7C15ULL;
constexpr int32_t kInitialSlots = 16;  // power of two
// How many rows ahead the batch paths prefetch dedupe/index slot lines.
constexpr int64_t kPrefetchAhead = 8;

// Smallest power of two >= max(bound, kInitialSlots).
size_t PowerOfTwoAtLeast(size_t bound) {
  size_t capacity = kInitialSlots;
  while (capacity < bound) capacity *= 2;
  return capacity;
}

// The shared probe key over the masked positions, parameterized over how a
// position's value is fetched (from a pattern array or from a stored row)
// so the two call sites cannot drift apart. ConstIds are nonnegative
// 31-bit values, so one or two of them pack injectively — the key IS the
// masked tuple and key equality is match equality. Wider masks fall back
// to an FNV chain (collisions possible; chains verify rows anyway). Slot
// positions are always derived via Relation::MixSlot, so the packed keys
// need no avalanche of their own.
template <typename GetFn>
uint64_t ProbeKeyImpl(uint32_t mask, GetFn get) {
  switch (std::popcount(mask)) {
    case 0:
      return 0;
    case 1: {
      const int32_t i = std::countr_zero(mask);
      return static_cast<uint64_t>(get(i));
    }
    case 2: {
      const int32_t i = std::countr_zero(mask);
      const int32_t j = std::countr_zero(mask & (mask - 1));
      return static_cast<uint64_t>(get(i)) << 32 |
             static_cast<uint32_t>(get(j));
    }
    default: {
      uint64_t h = kFnvOffset ^ mask;
      for (uint32_t bits = mask; bits != 0; bits &= bits - 1) {
        h ^= static_cast<uint64_t>(get(std::countr_zero(bits))) + kGolden;
        h *= kFnvPrime;
      }
      return h;
    }
  }
}

}  // namespace

uint64_t Relation::FingerprintOf(const ConstId* values, int32_t count) const {
  // Arity ≤ 2 packs exactly (see ExactFingerprints); wider tuples hash.
  switch (count) {
    case 0:
      return 0;
    case 1:
      return static_cast<uint64_t>(values[0]);
    case 2:
      return static_cast<uint64_t>(values[0]) << 32 |
             static_cast<uint32_t>(values[1]);
    default: {
      uint64_t h = kFnvOffset;
      for (int32_t i = 0; i < count; ++i) {
        h ^= static_cast<uint64_t>(values[i]) + kGolden;
        h *= kFnvPrime;
      }
      return h;
    }
  }
}

uint64_t Relation::ProbeKeyOf(uint32_t mask, const ConstId* values) const {
  return ProbeKeyImpl(mask, [values](int32_t i) { return values[i]; });
}

uint64_t Relation::RowProbeKey(uint32_t mask, int32_t row) const {
  return ProbeKeyImpl(mask, [this, row](int32_t i) { return At(row, i); });
}

int32_t Relation::FindRow(const ConstId* values, uint64_t fingerprint) const {
  if (dedupe_.empty()) return -1;
  const size_t slot_mask = dedupe_.size() - 1;
  for (size_t slot = MixSlot(fingerprint) & slot_mask;;
       slot = (slot + 1) & slot_mask) {
    const int32_t row = dedupe_[slot];
    if (row < 0) return -1;
    if (RowEquals(row, values)) return row;
  }
}

void Relation::GrowArena(int64_t min_capacity) {
  int64_t new_capacity = capacity_ == 0 ? 16 : capacity_ * 2;
  while (new_capacity < min_capacity) new_capacity *= 2;
  std::vector<ConstId> fresh(static_cast<size_t>(new_capacity) * arity_);
  for (int32_t c = 0; c < arity_; ++c) {
    const ConstId* src = data_.data() + static_cast<size_t>(c) * capacity_;
    ConstId* dst = fresh.data() + static_cast<size_t>(c) * new_capacity;
    std::copy(src, src + num_rows_, dst);
  }
  data_ = std::move(fresh);
  capacity_ = new_capacity;
}

void Relation::GrowDedupe() {
  RehashDedupe(dedupe_.empty() ? kInitialSlots : dedupe_.size() * 2);
}

void Relation::RehashDedupe(size_t new_capacity) {
  // Slots hold only row ids, so rehashing recomputes fingerprints from the
  // columns — in row order, so each column block is read as one sequential
  // stream (iterating slots instead would gather rows randomly). Rare by
  // construction: every bulk path pre-sizes the table for its whole batch.
  std::vector<int32_t> fresh(new_capacity, -1);
  const size_t slot_mask = new_capacity - 1;
  std::vector<ConstId> row_buf(static_cast<size_t>(arity_));
  for (int32_t row = 0; row < num_rows_; ++row) {
    CopyRow(row, row_buf.data());
    size_t slot = MixSlot(FingerprintOf(row_buf.data(), arity_)) & slot_mask;
    while (fresh[slot] >= 0) slot = (slot + 1) & slot_mask;
    fresh[slot] = row;
  }
  dedupe_ = std::move(fresh);
}

bool Relation::Insert(const ConstId* values, uint64_t fingerprint) {
  if (dedupe_.empty() ||
      static_cast<size_t>(num_rows_ + 1) * 2 > dedupe_.size()) {
    GrowDedupe();
  }
  const size_t slot_mask = dedupe_.size() - 1;
  size_t slot = MixSlot(fingerprint) & slot_mask;
  while (dedupe_[slot] >= 0) {
    if (RowEquals(dedupe_[slot], values)) return false;
    slot = (slot + 1) & slot_mask;
  }
  AppendRow(values);
  const int32_t row = num_rows_++;
  dedupe_[slot] = row;
  for (ProbeIndex& index : indexes_) AppendToIndex(&index, row);
  return true;
}

void Relation::Reserve(int64_t num_rows) {
  TIEBREAK_CHECK_GE(num_rows, 0);
  if (num_rows > capacity_) GrowArena(num_rows);
  const size_t wanted = PowerOfTwoAtLeast(static_cast<size_t>(num_rows) * 2);
  if (dedupe_.size() < wanted) RehashDedupe(wanted);
}

int64_t Relation::BulkInsert(const Relation& staged) {
  TIEBREAK_CHECK_EQ(staged.arity_, arity_);
  const int32_t first_new = num_rows_;
  // One capacity decision for the whole batch: size the arena and dedupe
  // table for the worst case (every staged row new) so the scan never
  // regrows mid-stream.
  if (num_rows_ + staged.num_rows_ > capacity_) {
    GrowArena(num_rows_ + staged.num_rows_);
  }
  const size_t wanted = PowerOfTwoAtLeast(
      static_cast<size_t>(num_rows_ + staged.num_rows_ + 1) * 2);
  if (dedupe_.size() < wanted) RehashDedupe(wanted);
  const size_t slot_mask = dedupe_.size() - 1;
  // Hash the whole stage up front so the probe loop can prefetch the slot
  // line a few rows before it lands on it. For the dominant arities the
  // fingerprints come straight off the column blocks (sequential reads);
  // wider tuples gather row-wise.
  std::vector<uint64_t> fps(static_cast<size_t>(staged.num_rows_));
  std::vector<ConstId> row_buf(static_cast<size_t>(arity_));
  if (arity_ == 1) {
    const ConstId* c0 = staged.ColumnData(0);
    for (int32_t r = 0; r < staged.num_rows_; ++r) {
      fps[r] = static_cast<uint64_t>(c0[r]);
    }
  } else if (arity_ == 2) {
    const ConstId* c0 = staged.ColumnData(0);
    const ConstId* c1 = staged.ColumnData(1);
    for (int32_t r = 0; r < staged.num_rows_; ++r) {
      fps[r] = static_cast<uint64_t>(c0[r]) << 32 |
               static_cast<uint32_t>(c1[r]);
    }
  } else {
    for (int32_t r = 0; r < staged.num_rows_; ++r) {
      staged.CopyRow(r, row_buf.data());
      fps[r] = FingerprintOf(row_buf.data(), arity_);
    }
  }
  for (int32_t r = 0; r < staged.num_rows_; ++r) {
    if (r + kPrefetchAhead < staged.num_rows_) {
      PrefetchDedupe(fps[r + kPrefetchAhead]);
    }
    staged.CopyRow(r, row_buf.data());
    size_t slot = MixSlot(fps[r]) & slot_mask;
    bool duplicate = false;
    while (dedupe_[slot] >= 0) {
      if (RowEquals(dedupe_[slot], row_buf.data())) {
        duplicate = true;
        break;
      }
      slot = (slot + 1) & slot_mask;
    }
    if (duplicate) continue;
    AppendRow(row_buf.data());
    dedupe_[slot] = num_rows_++;
  }
  // Publish to the probe indexes: each index is extended once with the
  // whole batch of new rows (not per tuple). Chains only ever prepend at
  // slot heads, so MatchRange walks opened before this publish are
  // unaffected. Note this is one pass per index *per BulkInsert call* —
  // the round barrier calls BulkInsert once per non-empty worker stage.
  for (ProbeIndex& index : indexes_) {
    index.next.reserve(num_rows_);
    for (int32_t row = first_new; row < num_rows_; ++row) {
      AppendToIndex(&index, row);
    }
  }
  return num_rows_ - first_new;
}

void Relation::InsertUniqueBulk(const ConstId* rows, int64_t count) {
  if (count <= 0) return;
  if (arity_ == 0) {
    // At most one distinct zero-arity tuple exists; the uniqueness contract
    // makes this a single ordinary insert.
    TIEBREAK_CHECK_EQ(count, 1);
    Insert(rows);
    return;
  }
  const int32_t first_new = num_rows_;
  if (num_rows_ + count > capacity_) GrowArena(num_rows_ + count);
  // Column-wise scatter from the row-major input: each column block is a
  // sequential write.
  for (int32_t c = 0; c < arity_; ++c) {
    ConstId* out = data_.data() + static_cast<size_t>(c) * capacity_ +
                   num_rows_;
    const ConstId* in = rows + c;
    for (int64_t r = 0; r < count; ++r, in += arity_) out[r] = *in;
  }
  const size_t wanted =
      PowerOfTwoAtLeast(static_cast<size_t>(num_rows_ + count) * 2);
  if (dedupe_.size() < wanted) RehashDedupe(wanted);
  const size_t slot_mask = dedupe_.size() - 1;
  std::vector<uint64_t> fps(static_cast<size_t>(count));
  for (int64_t r = 0; r < count; ++r) {
    fps[r] = FingerprintOf(rows + r * arity_, arity_);
  }
  // Every row is new by contract, so slot placement never compares tuples:
  // it probes to the first empty slot. (With arity > 2, distinct tuples
  // that collide on the hashed fingerprint simply occupy two slots, which
  // FindRow handles by verifying columns on fingerprint matches.)
  for (int64_t r = 0; r < count; ++r) {
    if (r + kPrefetchAhead < count) PrefetchDedupe(fps[r + kPrefetchAhead]);
    size_t slot = MixSlot(fps[r]) & slot_mask;
    while (dedupe_[slot] >= 0) slot = (slot + 1) & slot_mask;
    dedupe_[slot] = num_rows_++;
  }
  for (ProbeIndex& index : indexes_) {
    index.next.reserve(num_rows_);
    for (int32_t row = first_new; row < num_rows_; ++row) {
      AppendToIndex(&index, row);
    }
  }
}

int64_t Relation::InsertBatch(const ConstId* rows, int64_t count) {
  if (count <= 0) return 0;
  // Pre-grow once so mid-batch inserts never rehash (which would strand the
  // prefetches on the old slot arrays).
  const size_t wanted =
      PowerOfTwoAtLeast(static_cast<size_t>(num_rows_ + count + 1) * 2);
  if (dedupe_.size() < wanted) RehashDedupe(wanted);
  std::vector<uint64_t> fps(static_cast<size_t>(count));
  for (int64_t r = 0; r < count; ++r) {
    fps[r] = FingerprintOf(rows + r * arity_, arity_);
  }
  int64_t inserted = 0;
  for (int64_t r = 0; r < count; ++r) {
    if (r + kPrefetchAhead < count) {
      // Prefetch the dedupe slot and, for rows likely new, the index slot
      // lines the insert will touch.
      PrefetchDedupe(fps[r + kPrefetchAhead]);
      for (const ProbeIndex& index : indexes_) {
        if (index.slots.empty()) continue;
        const uint64_t key =
            ProbeKeyOf(index.mask, rows + (r + kPrefetchAhead) * arity_);
        __builtin_prefetch(
            &index.slots[MixSlot(key) & (index.slots.size() - 1)]);
      }
    }
    if (Insert(rows + r * arity_, fps[r])) ++inserted;
  }
  return inserted;
}

void Relation::Clear() {
  num_rows_ = 0;
  std::fill(dedupe_.begin(), dedupe_.end(), -1);
  // Keep the arena and the materialized index shells (mask + slot/link
  // capacity): recycled staging relations re-probe the same masks every
  // fixpoint round, and retaining the shells keeps those rounds
  // allocation-free steady-state.
  for (ProbeIndex& index : indexes_) {
    index.next.clear();
    std::fill(index.slots.begin(), index.slots.end(), Slot{});
    index.used_slots = 0;
  }
  for (SortedIndex& sorted : sorted_indexes_) {
    sorted.keys.clear();
    sorted.rows.clear();
    sorted.built_rows = 0;
    sorted.distinct_keys = 0;
  }
}

void Relation::GrowIndexSlots(ProbeIndex* index) {
  const size_t new_capacity =
      index->slots.empty() ? kInitialSlots : index->slots.size() * 2;
  std::vector<Slot> fresh(new_capacity);
  const size_t slot_mask = new_capacity - 1;
  // Chains move wholesale: rehashing touches only the slot table, never the
  // `next` links, so live MatchRange walks are unaffected.
  for (const Slot& entry : index->slots) {
    if (entry.row < 0) continue;
    size_t slot = MixSlot(entry.key) & slot_mask;
    while (fresh[slot].row >= 0) slot = (slot + 1) & slot_mask;
    fresh[slot] = entry;
  }
  index->slots = std::move(fresh);
}

void Relation::AppendToIndex(ProbeIndex* index, int32_t row) const {
  if (index->slots.empty() ||
      static_cast<size_t>(index->used_slots + 1) * 2 > index->slots.size()) {
    GrowIndexSlots(index);
  }
  const uint64_t key = RowProbeKey(index->mask, row);
  const size_t slot_mask = index->slots.size() - 1;
  size_t slot = MixSlot(key) & slot_mask;
  while (index->slots[slot].row >= 0 && index->slots[slot].key != key) {
    slot = (slot + 1) & slot_mask;
  }
  index->next.push_back(index->slots[slot].row >= 0 ? index->slots[slot].row
                                                    : -1);
  if (index->slots[slot].row < 0) {
    index->slots[slot].key = key;
    ++index->used_slots;
  }
  index->slots[slot].row = row;
}

Relation::ProbeIndex& Relation::EnsureIndex(uint32_t mask) const {
  for (ProbeIndex& index : indexes_) {
    if (index.mask == mask) return index;
  }
  ProbeIndex& index = indexes_.emplace_back();
  index.mask = mask;
  index.next.reserve(num_rows_);
  for (int32_t row = 0; row < num_rows_; ++row) AppendToIndex(&index, row);
  return index;
}

Relation::MatchRange Relation::Probe(uint32_t mask,
                                     const ConstId* pattern) const {
  const ProbeIndex& index = EnsureIndex(mask);
  const int32_t index_pos = static_cast<int32_t>(&index - indexes_.data());
  return MatchRange(this, index_pos,
                    ProbeChainHead(ProbeRef{index_pos},
                                   ProbeKeyOf(mask, pattern)));
}

Relation::MatchRange Relation::ProbeHashed(ProbeRef ref, uint64_t key) const {
  return MatchRange(this, ref.index_pos, ProbeChainHead(ref, key));
}

int32_t Relation::ProbeChainHead(ProbeRef ref, uint64_t key) const {
  const ProbeIndex& index = indexes_[ref.index_pos];
  if (index.slots.empty()) return -1;
  const size_t slot_mask = index.slots.size() - 1;
  size_t slot = MixSlot(key) & slot_mask;
  while (index.slots[slot].row >= 0 && index.slots[slot].key != key) {
    slot = (slot + 1) & slot_mask;
  }
  return index.slots[slot].row;
}

Relation::SortedIndex& Relation::EnsureSorted(uint32_t mask) const {
  for (SortedIndex& sorted : sorted_indexes_) {
    if (sorted.mask == mask) return sorted;
  }
  SortedIndex& sorted = sorted_indexes_.emplace_back();
  sorted.mask = mask;
  return sorted;
}

void Relation::RefreshSorted(SortedIndex* sorted) const {
  if (sorted->built_rows == num_rows_) return;
  // Sort the appended tail, then merge it with the already-sorted prefix
  // into fresh arrays (two parallel arrays beat an array-of-pairs for the
  // binary-search scans that consume this index).
  std::vector<std::pair<uint64_t, int32_t>> tail;
  tail.reserve(static_cast<size_t>(num_rows_ - sorted->built_rows));
  for (int32_t row = static_cast<int32_t>(sorted->built_rows);
       row < num_rows_; ++row) {
    tail.emplace_back(RowProbeKey(sorted->mask, row), row);
  }
  std::sort(tail.begin(), tail.end());
  std::vector<uint64_t> keys;
  std::vector<int32_t> rows;
  keys.reserve(static_cast<size_t>(num_rows_));
  rows.reserve(static_cast<size_t>(num_rows_));
  size_t old_at = 0;
  size_t tail_at = 0;
  const size_t old_size = sorted->keys.size();
  while (old_at < old_size || tail_at < tail.size()) {
    const bool take_old =
        tail_at == tail.size() ||
        (old_at < old_size &&
         (sorted->keys[old_at] < tail[tail_at].first ||
          (sorted->keys[old_at] == tail[tail_at].first &&
           sorted->rows[old_at] < tail[tail_at].second)));
    if (take_old) {
      keys.push_back(sorted->keys[old_at]);
      rows.push_back(sorted->rows[old_at]);
      ++old_at;
    } else {
      keys.push_back(tail[tail_at].first);
      rows.push_back(tail[tail_at].second);
      ++tail_at;
    }
  }
  sorted->keys = std::move(keys);
  sorted->rows = std::move(rows);
  sorted->built_rows = num_rows_;
  sorted->distinct_keys = 0;
  for (size_t i = 0; i < sorted->keys.size(); ++i) {
    if (i == 0 || sorted->keys[i] != sorted->keys[i - 1]) {
      ++sorted->distinct_keys;
    }
  }
}

void Relation::EnsureSortedIndex(uint32_t mask) const {
  RefreshSorted(&EnsureSorted(mask));
}

Relation::SortedRun Relation::ProbeSorted(uint32_t mask,
                                          const ConstId* pattern) const {
  SortedIndex& sorted = EnsureSorted(mask);
  RefreshSorted(&sorted);
  const uint64_t key = ProbeKeyOf(mask, pattern);
  const auto begin = sorted.keys.begin();
  const auto lo = std::lower_bound(begin, sorted.keys.end(), key);
  if (lo == sorted.keys.end() || *lo != key) return SortedRun{};
  const auto hi = std::upper_bound(lo, sorted.keys.end(), key);
  const int32_t* rows = sorted.rows.data();
  return SortedRun{rows + (lo - begin), rows + (hi - begin)};
}

int64_t Relation::DistinctKeysEstimate(uint32_t mask) const {
  for (const SortedIndex& sorted : sorted_indexes_) {
    if (sorted.mask == mask && sorted.built_rows == num_rows_) {
      return sorted.distinct_keys;
    }
  }
  for (const ProbeIndex& index : indexes_) {
    if (index.mask == mask) return index.used_slots;
  }
  return -1;
}

}  // namespace tiebreak
