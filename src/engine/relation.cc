#include "engine/relation.h"

namespace tiebreak {

namespace {
const std::vector<int32_t> kEmptyMatch;
}  // namespace

uint64_t Relation::Fingerprint(const Tuple& tuple) {
  uint64_t h = 14695981039346656037ULL;
  for (ConstId c : tuple) {
    h ^= static_cast<uint64_t>(c) + 0x9E3779B97F4A7C15ULL;
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t Relation::KeyHash(uint32_t mask, const Tuple& tuple) {
  uint64_t h = 14695981039346656037ULL ^ mask;
  for (size_t i = 0; i < tuple.size(); ++i) {
    if ((mask >> i) & 1) {
      h ^= static_cast<uint64_t>(tuple[i]) + 0x9E3779B97F4A7C15ULL;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

bool Relation::ContainsExact(const Tuple& tuple) const {
  auto it = dedupe_.find(Fingerprint(tuple));
  if (it == dedupe_.end()) return false;
  for (int32_t index : it->second) {
    if (tuples_[index] == tuple) return true;
  }
  return false;
}

bool Relation::Insert(const Tuple& tuple) {
  TIEBREAK_CHECK_EQ(static_cast<int32_t>(tuple.size()), arity_);
  const uint64_t fp = Fingerprint(tuple);
  std::vector<int32_t>& bucket = dedupe_[fp];
  for (int32_t index : bucket) {
    if (tuples_[index] == tuple) return false;
  }
  bucket.push_back(static_cast<int32_t>(tuples_.size()));
  tuples_.push_back(tuple);
  indexes_dirty_ = true;
  return true;
}

const std::vector<int32_t>& Relation::Probe(uint32_t mask,
                                            const Tuple& pattern) const {
  TIEBREAK_CHECK_EQ(static_cast<int32_t>(pattern.size()), arity_);
  if (indexes_dirty_) {
    indexes_.clear();
    indexes_dirty_ = false;
  }
  auto& index = indexes_[mask];
  if (index.empty() && !tuples_.empty()) {
    index.reserve(tuples_.size() * 2);
    for (int32_t i = 0; i < static_cast<int32_t>(tuples_.size()); ++i) {
      index[KeyHash(mask, tuples_[i])].push_back(i);
    }
  }
  auto it = index.find(KeyHash(mask, pattern));
  return it == index.end() ? kEmptyMatch : it->second;
}

}  // namespace tiebreak
