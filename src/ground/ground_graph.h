// The ground graph G(Π, Δ) of Section 2: a bipartite directed graph with
// predicate nodes (ground atoms) and rule nodes (rule instantiations),
// positive edges (rule -> its head; positive body atom -> rule) and negative
// edges (negated body atom -> rule).
//
// Representation notes. Instead of materializing edge objects, each rule
// instance stores its head and its positive/negative body atom lists, and
// Finalize() builds the inverse indexes (consumers/supporters per atom).
// Every algorithm of the paper reads the graph through these adjacency
// lists; an explicit SignedDigraph over the *live* nodes is constructed by
// ground/live_graph.h only when the tie-breaking interpreters need SCCs.
#ifndef TIEBREAK_GROUND_GROUND_GRAPH_H_
#define TIEBREAK_GROUND_GROUND_GRAPH_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "lang/symbols.h"
#include "util/logging.h"

namespace tiebreak {

/// Dense id of a ground atom within one GroundGraph.
using AtomId = int32_t;

/// Interns (predicate, argument tuple) pairs as dense AtomIds.
class GroundAtomStore {
 public:
  /// Returns the id of the ground atom, interning it if new.
  AtomId Intern(PredId predicate, const Tuple& tuple);

  /// Returns the id or -1 when the atom was never interned.
  AtomId Lookup(PredId predicate, const Tuple& tuple) const;

  PredId PredicateOf(AtomId atom) const { return Entry(atom).first; }
  const Tuple& TupleOf(AtomId atom) const { return Entry(atom).second; }

  int32_t size() const { return static_cast<int32_t>(atoms_.size()); }

 private:
  const std::pair<PredId, Tuple>& Entry(AtomId atom) const {
    TIEBREAK_CHECK_GE(atom, 0);
    TIEBREAK_CHECK_LT(atom, size());
    return atoms_[atom];
  }

  static uint64_t HashKey(PredId predicate, const Tuple& tuple);

  std::vector<std::pair<PredId, Tuple>> atoms_;
  std::unordered_map<uint64_t, std::vector<AtomId>> index_;  // hash buckets
};

/// One rule node: the instantiation of `rule_index` under `binding` (the
/// constant chosen for each rule variable). EDB-resolved body literals may
/// have been dropped by the reduced grounder; the remaining body atoms are
/// stored by sign. Duplicate occurrences are preserved (parallel edges).
struct RuleInstance {
  int32_t rule_index = 0;
  AtomId head = 0;
  std::vector<AtomId> positive_body;
  std::vector<AtomId> negative_body;
  Tuple binding;
};

/// G(Π, Δ) plus the inverse indexes used by close() and the interpreters.
class GroundGraph {
 public:
  GroundAtomStore& atoms() { return atoms_; }
  const GroundAtomStore& atoms() const { return atoms_; }

  /// Appends a rule node. Must precede Finalize().
  void AddRuleInstance(RuleInstance instance) {
    TIEBREAK_CHECK(!finalized_);
    rules_.push_back(std::move(instance));
  }

  /// Builds consumer/supporter indexes. Call once, after all instances and
  /// atoms are in.
  void Finalize();

  int32_t num_atoms() const { return atoms_.size(); }
  int32_t num_rules() const { return static_cast<int32_t>(rules_.size()); }
  bool finalized() const { return finalized_; }

  const RuleInstance& rule(int32_t r) const {
    TIEBREAK_CHECK_GE(r, 0);
    TIEBREAK_CHECK_LT(r, num_rules());
    return rules_[r];
  }
  const std::vector<RuleInstance>& rules() const { return rules_; }

  /// Rule nodes with a positive body edge from `atom`.
  const std::vector<int32_t>& PositiveConsumers(AtomId atom) const {
    TIEBREAK_CHECK(finalized_);
    return positive_consumers_[atom];
  }
  /// Rule nodes with a negative body edge from `atom`.
  const std::vector<int32_t>& NegativeConsumers(AtomId atom) const {
    TIEBREAK_CHECK(finalized_);
    return negative_consumers_[atom];
  }
  /// Rule nodes whose head is `atom`.
  const std::vector<int32_t>& Supporters(AtomId atom) const {
    TIEBREAK_CHECK(finalized_);
    return supporters_[atom];
  }

  /// Total number of edges (head edges + body occurrences).
  int64_t num_edges() const;

 private:
  GroundAtomStore atoms_;
  std::vector<RuleInstance> rules_;
  bool finalized_ = false;
  std::vector<std::vector<int32_t>> positive_consumers_;
  std::vector<std::vector<int32_t>> negative_consumers_;
  std::vector<std::vector<int32_t>> supporters_;
};

}  // namespace tiebreak

#endif  // TIEBREAK_GROUND_GROUND_GRAPH_H_
