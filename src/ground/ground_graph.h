// The ground graph G(Π, Δ) of Section 2: a bipartite directed graph with
// predicate nodes (ground atoms) and rule nodes (rule instantiations),
// positive edges (rule -> its head; positive body atom -> rule) and negative
// edges (negated body atom -> rule).
//
// Representation notes. Everything is flat, mirroring engine/relation.h:
//
//  * GroundAtomStore interns (predicate, tuple) pairs into one contiguous
//    ConstId argument arena (per-atom offset + predicate id — no per-atom
//    heap Tuple), deduplicated by per-predicate open-addressing tables
//    whose 64-bit keys are the packed tuple itself for arity ≤ 2 (ConstIds
//    are nonnegative 31-bit values, so one or two pack injectively; key
//    equality then *is* tuple equality and candidate verification is
//    skipped) and an FNV hash beyond.
//
//  * Rule nodes live in CSR arenas: one contiguous body-atom array holding
//    each instance's positive atoms followed by its negative atoms, with a
//    per-rule offset and positive/negative split point, plus flat head /
//    rule-index / binding arrays. No per-instance vectors exist; accessors
//    hand out Span views into the arenas.
//
//  * Finalize() builds the inverse indexes (consumers/supporters per atom)
//    as three CSR adjacency structures in one counting pass each: count
//    per-atom degrees, prefix-sum into offsets, then scatter the rule ids.
//
// Every algorithm of the paper reads the graph through these spans; an
// explicit SignedDigraph over the *live* nodes is constructed by
// ground/live_graph.h only when the tie-breaking interpreters need SCCs.
#ifndef TIEBREAK_GROUND_GROUND_GRAPH_H_
#define TIEBREAK_GROUND_GROUND_GRAPH_H_

#include <cstdint>
#include <vector>

#include "lang/database.h"
#include "lang/symbols.h"
#include "util/logging.h"
#include "util/span.h"
#include "util/status.h"

namespace tiebreak {

// Forward-declared (util/thread_pool.h): Finalize optionally fans its
// three index builds out over a pool.
class ThreadPool;

/// Dense id of a ground atom within one GroundGraph.
using AtomId = int32_t;

/// Non-owning view of consecutive AtomIds / rule ids / ConstIds (all are
/// int32). Valid until the owning graph structure mutates.
using IdSpan = Span<int32_t>;

/// Interns (predicate, argument tuple) pairs as dense AtomIds. Storage is
/// one flat argument arena plus per-predicate open-addressing dedupe
/// tables; see the file comment.
class GroundAtomStore {
 public:
  /// Returns the id of the ground atom whose arguments are the `arity`
  /// consecutive ids at `args`, interning it if new.
  AtomId Intern(PredId predicate, const ConstId* args, int32_t arity);
  AtomId Intern(PredId predicate, const Tuple& tuple) {
    return Intern(predicate, tuple.data(),
                  static_cast<int32_t>(tuple.size()));
  }

  /// The dedupe key of an argument tuple, precomputable ahead of the
  /// intern that consumes it. Batch emitters hash a block of atoms with
  /// this, PrefetchIntern each slot line, then InternHashed the block —
  /// the same pipeline-ahead trick as Relation::InsertBatch, hiding the
  /// dedupe-table latency that dominates million-atom emission.
  uint64_t InternKey(const ConstId* args, int32_t arity) const {
    return KeyOf(args, arity);
  }

  /// Prefetches the dedupe slot line `key` maps to in `predicate`'s table
  /// (`key` must come from InternKey). Advisory only; safe on predicates
  /// without a table yet.
  void PrefetchIntern(PredId predicate, uint64_t key) const {
    if (predicate < static_cast<PredId>(tables_.size())) {
      const PredTable& table = tables_[predicate];
      if (!table.slots.empty()) {
        __builtin_prefetch(
            &table.slots[MixSlot(key) & (table.slots.size() - 1)]);
      }
    }
  }

  /// Intern() with a precomputed key (`key` must equal
  /// InternKey(args, arity)) — the consuming half of the batch pipeline.
  AtomId InternHashed(PredId predicate, const ConstId* args, int32_t arity,
                      uint64_t key);

  /// Returns the id or -1 when the atom was never interned.
  AtomId Lookup(PredId predicate, const ConstId* args, int32_t arity) const;
  AtomId Lookup(PredId predicate, const Tuple& tuple) const {
    return Lookup(predicate, tuple.data(),
                  static_cast<int32_t>(tuple.size()));
  }

  /// Predicate of an interned atom.
  PredId PredicateOf(AtomId atom) const {
    CheckAtom(atom);
    return pred_[atom];
  }

  /// Number of arguments of an interned atom.
  int32_t ArityOf(AtomId atom) const {
    CheckAtom(atom);
    return static_cast<int32_t>(offset_[atom + 1] - offset_[atom]);
  }

  /// The atom's arguments as a view into the flat arena (valid until the
  /// next Intern).
  IdSpan ArgsOf(AtomId atom) const {
    CheckAtom(atom);
    return IdSpan(args_.data() + offset_[atom],
                  static_cast<size_t>(offset_[atom + 1] - offset_[atom]));
  }

  /// Materializes the atom's arguments as an owned Tuple (convenience;
  /// allocates — hot paths use ArgsOf).
  Tuple TupleOf(AtomId atom) const {
    const IdSpan args = ArgsOf(atom);
    return Tuple(args.begin(), args.end());
  }

  /// Number of interned atoms.
  int32_t size() const { return static_cast<int32_t>(pred_.size()); }

  /// Builds the per-predicate atom index consumed by AtomsOfPredicate: one
  /// counting pass over the per-atom predicate array, a prefix sum, and a
  /// scatter — atom ids land ascending within each predicate's span.
  /// GroundGraph::Finalize calls this; a store mutated afterwards must be
  /// re-indexed before AtomsOfPredicate is used again.
  void BuildPredicateIndex();

  /// True once BuildPredicateIndex has run and no atom was interned since.
  bool has_predicate_index() const {
    return by_pred_atom_count_ == static_cast<int64_t>(pred_.size());
  }

  /// The ids of every atom of `predicate`, ascending — the point-query scan
  /// range that replaces testing PredicateOf(a) across the whole store.
  /// Requires has_predicate_index(); predicates beyond the indexed range
  /// (possible when the shaping program declared more predicates than were
  /// ever interned) get an empty span.
  IdSpan AtomsOfPredicate(PredId predicate) const {
    TIEBREAK_CHECK(has_predicate_index());
    TIEBREAK_CHECK_GE(predicate, 0);
    if (predicate + 1 >= static_cast<PredId>(by_pred_offset_.size())) {
      return IdSpan(nullptr, 0);
    }
    return IdSpan(by_pred_atoms_.data() + by_pred_offset_[predicate],
                  static_cast<size_t>(by_pred_offset_[predicate + 1] -
                                      by_pred_offset_[predicate]));
  }

  /// Total argument-arena entries across all atoms (for pre-sizing a merge
  /// target's Reserve).
  int64_t num_args() const { return offset_.back(); }

  /// Pre-sizes the arenas for `num_atoms` atoms carrying `num_args` total
  /// arguments (advisory).
  void Reserve(int64_t num_atoms, int64_t num_args);

  /// Storage dump views (src/storage/): the per-atom predicate array, the
  /// argument-arena offsets (size()+1 entries), and the flat argument
  /// arena itself. Valid until the next Intern.
  Span<PredId> atom_predicates() const {
    return Span<PredId>(pred_.data(), pred_.size());
  }
  /// Per-atom argument offsets; see atom_predicates().
  Span<int64_t> arg_offsets() const {
    return Span<int64_t>(offset_.data(), offset_.size());
  }
  /// The flat argument arena; see atom_predicates().
  Span<ConstId> arg_arena() const {
    return Span<ConstId>(args_.data(), args_.size());
  }

  /// Storage restore path: rebuilds a store from arenas read off disk,
  /// treating them as untrusted. Validates shape (offsets start at 0,
  /// monotone, ending exactly at the arena size; one offset per atom plus
  /// one), every PredId in [0, num_predicates) and every ConstId in
  /// [0, num_constants), then re-interns the atoms in id order — which
  /// rebuilds the dedupe tables exactly as the original interning did and
  /// detects duplicate atoms (kDataLoss) as a side effect. The returned
  /// store is bit-identical, arena for arena, to the one that was dumped.
  static Result<GroundAtomStore> FromArenas(Span<PredId> preds,
                                            Span<int64_t> offsets,
                                            Span<ConstId> args,
                                            int32_t num_predicates,
                                            int32_t num_constants);

 private:
  // One open-addressing slot: the 64-bit key packed next to the atom it
  // names. atom < 0 = empty (key is then meaningless).
  struct Slot {
    uint64_t key = 0;
    AtomId atom = -1;
  };
  // Per-predicate dedupe table (power-of-two capacity, linear probing,
  // load factor ≤ 1/2).
  struct PredTable {
    std::vector<Slot> slots;
    int32_t used = 0;
  };

  void CheckAtom(AtomId atom) const {
    TIEBREAK_CHECK_GE(atom, 0);
    TIEBREAK_CHECK_LT(atom, size());
  }
  // Packed tuple for arity ≤ 2 (injective), FNV-1a hash beyond.
  static uint64_t KeyOf(const ConstId* args, int32_t arity);
  // True when key equality alone proves tuple equality (within one arity).
  static bool ExactKeys(int32_t arity) { return arity <= 2; }
  // Slot placement: avalanche the high word, fold the low word in at a
  // small odd stride so sequentially increasing packed keys (the grounder
  // interns sorted bindings) probe at a hardware-prefetchable stride.
  static uint64_t MixSlot(uint64_t x) {
    uint64_t high = (x >> 32) + 0x9E3779B97F4A7C15ULL;
    high = (high ^ (high >> 30)) * 0xBF58476D1CE4E5B9ULL;
    high = (high ^ (high >> 27)) * 0x94D049BB133111EBULL;
    return (high ^ (high >> 31)) + (x & 0xFFFFFFFFULL) * 431;
  }
  bool AtomEquals(AtomId atom, const ConstId* args, int32_t arity) const {
    if (offset_[atom + 1] - offset_[atom] != arity) return false;
    const ConstId* stored = args_.data() + offset_[atom];
    for (int32_t i = 0; i < arity; ++i) {
      if (stored[i] != args[i]) return false;
    }
    return true;
  }
  void GrowTable(PredTable* table) const;

  std::vector<PredId> pred_;        // per atom
  std::vector<int64_t> offset_{0};  // per atom + 1: argument arena offsets
  std::vector<ConstId> args_;     // flat argument arena
  std::vector<PredTable> tables_; // per predicate, grown on demand

  // Per-predicate atom index (BuildPredicateIndex): by_pred_atoms_ holds
  // every atom id grouped by predicate, by_pred_offset_[p, p+1) bounds
  // predicate p's group. by_pred_atom_count_ records the store size the
  // index was built at; a mismatch means the index is stale.
  std::vector<int64_t> by_pred_offset_;
  std::vector<AtomId> by_pred_atoms_;
  int64_t by_pred_atom_count_ = -1;
};

/// One rule node: the instantiation of `rule_index` under `binding` (the
/// constant chosen for each rule variable). EDB-resolved body literals may
/// have been dropped by the reduced grounder; the remaining body atoms are
/// stored by sign. Duplicate occurrences are preserved (parallel edges).
/// This is the *builder input* type of AddRuleInstance — the graph stores
/// the data in CSR arenas, not as RuleInstance objects; hot emitters use
/// AppendRule and skip the vectors entirely.
struct RuleInstance {
  int32_t rule_index = 0;
  AtomId head = 0;
  std::vector<AtomId> positive_body;
  std::vector<AtomId> negative_body;
  Tuple binding;
};

/// G(Π, Δ) plus the inverse indexes used by close() and the interpreters.
/// All storage is CSR arenas; see the file comment.
class GroundGraph {
 public:
  /// The graph's atom store (atoms are interned through it during build).
  GroundAtomStore& atoms() { return atoms_; }
  const GroundAtomStore& atoms() const { return atoms_; }

  /// Appends a rule node from borrowed arrays (no allocation beyond arena
  /// growth): `num_pos` positive body atoms at `pos`, `num_neg` negative
  /// body atoms at `neg`, `num_binding` binding constants at `binding`
  /// (may be null/0 for propositional instances). Must precede Finalize().
  void AppendRule(int32_t rule_index, AtomId head, const AtomId* pos,
                  int32_t num_pos, const AtomId* neg, int32_t num_neg,
                  const ConstId* binding, int32_t num_binding);

  /// Convenience wrapper over AppendRule for callers holding a
  /// RuleInstance.
  void AddRuleInstance(const RuleInstance& instance) {
    AppendRule(instance.rule_index, instance.head,
               instance.positive_body.data(),
               static_cast<int32_t>(instance.positive_body.size()),
               instance.negative_body.data(),
               static_cast<int32_t>(instance.negative_body.size()),
               instance.binding.data(),
               static_cast<int32_t>(instance.binding.size()));
  }

  /// Absorbs another (unfinalized) graph built over the same program and
  /// constant table: every shard atom is interned into this graph's store
  /// (deduplicating against atoms already present) to build a shard-local
  /// → global AtomId remap, then the shard's rule instances are appended
  /// wholesale with their head/body ids rewritten through the remap and
  /// their CSR offsets shifted by this graph's arena sizes. This is the
  /// merge half of parallel grounding's shard-and-merge: workers emit into
  /// private GroundGraph shards with no synchronization at all, and the
  /// coordinating thread folds the shards in afterwards. Rule-instance
  /// multiplicity is preserved (the result holds the concatenation).
  void MergeFrom(const GroundGraph& shard);

  /// Builds the CSR consumer/supporter indexes (one counting pass each).
  /// Call once, after all instances and atoms are in. The three inverse
  /// indexes (supporters, positive/negative consumers) touch disjoint
  /// arrays, so a non-null `pool` with more than one lane builds them as
  /// three concurrent tasks (the shard-aware finalize the parallel
  /// grounder drives); serially the result is identical.
  void Finalize(ThreadPool* pool = nullptr);

  int32_t num_atoms() const { return atoms_.size(); }
  int32_t num_rules() const { return static_cast<int32_t>(head_.size()); }
  bool finalized() const { return finalized_; }

  /// Index of the program rule this instance instantiates.
  int32_t RuleIndexOf(int32_t r) const {
    CheckRule(r);
    return rule_index_[r];
  }
  /// The instance's head atom.
  AtomId HeadOf(int32_t r) const {
    CheckRule(r);
    return head_[r];
  }
  /// The instance's positive body atoms (view into the CSR arena).
  IdSpan PositiveBody(int32_t r) const {
    CheckRule(r);
    return IdSpan(body_.data() + body_offset_[r],
                  static_cast<size_t>(pos_end_[r] - body_offset_[r]));
  }
  /// The instance's negative body atoms.
  IdSpan NegativeBody(int32_t r) const {
    CheckRule(r);
    return IdSpan(body_.data() + pos_end_[r],
                  static_cast<size_t>(body_offset_[r + 1] - pos_end_[r]));
  }
  /// Total body atoms (positive + negative) of the instance.
  int32_t BodySize(int32_t r) const {
    CheckRule(r);
    return static_cast<int32_t>(body_offset_[r + 1] - body_offset_[r]);
  }
  /// The constants substituted for the rule's variables. Empty unless the
  /// builder recorded a binding (the grounder does so only under
  /// GroundingOptions::record_bindings).
  IdSpan BindingOf(int32_t r) const {
    CheckRule(r);
    return IdSpan(binding_.data() + binding_offset_[r],
                  static_cast<size_t>(binding_offset_[r + 1] -
                                      binding_offset_[r]));
  }
  /// Rule nodes with a positive body edge from `atom`.
  IdSpan PositiveConsumers(AtomId atom) const {
    CheckFinalizedAtom(atom);
    return IdSpan(pos_consumers_.data() + pos_offset_[atom],
                  static_cast<size_t>(pos_offset_[atom + 1] -
                                      pos_offset_[atom]));
  }
  /// Rule nodes with a negative body edge from `atom`.
  IdSpan NegativeConsumers(AtomId atom) const {
    CheckFinalizedAtom(atom);
    return IdSpan(neg_consumers_.data() + neg_offset_[atom],
                  static_cast<size_t>(neg_offset_[atom + 1] -
                                      neg_offset_[atom]));
  }
  /// Rule nodes whose head is `atom`.
  IdSpan Supporters(AtomId atom) const {
    CheckFinalizedAtom(atom);
    return IdSpan(supporters_.data() + sup_offset_[atom],
                  static_cast<size_t>(sup_offset_[atom + 1] -
                                      sup_offset_[atom]));
  }

  /// Total number of edges (head edges + body occurrences).
  int64_t num_edges() const {
    return static_cast<int64_t>(body_.size()) + num_rules();
  }

  /// Pre-sizes the rule arenas for `rules` instances carrying `body_atoms`
  /// total body occurrences (advisory).
  void ReserveRules(int64_t rules, int64_t body_atoms);

  /// Storage dump views (src/storage/) over the rule arenas, in the same
  /// layout FromArenas consumes: per-rule program-rule indexes, heads and
  /// positive-split points, the body offsets (num_rules()+1 entries), the
  /// flat body arena, and the binding offsets/arena. Valid until the next
  /// AppendRule/MergeFrom.
  Span<int32_t> rule_indices() const {
    return Span<int32_t>(rule_index_.data(), rule_index_.size());
  }
  /// Per-rule head atoms; see rule_indices().
  Span<AtomId> heads() const {
    return Span<AtomId>(head_.data(), head_.size());
  }
  /// Per-rule positive-body end offsets; see rule_indices().
  Span<int64_t> pos_ends() const {
    return Span<int64_t>(pos_end_.data(), pos_end_.size());
  }
  /// Body-arena offsets (num_rules()+1 entries); see rule_indices().
  Span<int64_t> body_offsets() const {
    return Span<int64_t>(body_offset_.data(), body_offset_.size());
  }
  /// The flat body-atom arena; see rule_indices().
  Span<AtomId> body_arena() const {
    return Span<AtomId>(body_.data(), body_.size());
  }
  /// Binding-arena offsets (num_rules()+1 entries); see rule_indices().
  Span<int64_t> binding_offsets() const {
    return Span<int64_t>(binding_offset_.data(), binding_offset_.size());
  }
  /// The flat binding-constant arena; see rule_indices().
  Span<ConstId> binding_arena() const {
    return Span<ConstId>(binding_.data(), binding_.size());
  }

  /// Storage restore path: rebuilds a *finalized* graph from an atom store
  /// (already validated/restored via GroundAtomStore::FromArenas) plus
  /// untrusted rule arenas in the dump layout. Validates every
  /// cross-arena invariant — equal per-rule array lengths, offset arrays
  /// starting at 0, monotone and ending exactly at their arena sizes,
  /// pos_end within each rule's body range, every head/body AtomId within
  /// the store, every binding ConstId in [0, num_constants), every rule
  /// index nonnegative (and < num_program_rules when >= 0 is passed) —
  /// returning kDataLoss on any violation, then rebuilds the inverse CSR
  /// indexes with the serial Finalize. The rule arenas of the returned
  /// graph are bit-identical to the dumped ones.
  static Result<GroundGraph> FromArenas(GroundAtomStore atoms,
                                        Span<int32_t> rule_indices,
                                        Span<AtomId> heads,
                                        Span<int64_t> pos_ends,
                                        Span<int64_t> body_offsets,
                                        Span<AtomId> body,
                                        Span<int64_t> binding_offsets,
                                        Span<ConstId> bindings,
                                        int32_t num_constants,
                                        int32_t num_program_rules);

 private:
  void CheckRule(int32_t r) const {
    TIEBREAK_CHECK_GE(r, 0);
    TIEBREAK_CHECK_LT(r, num_rules());
  }
  void CheckFinalizedAtom(AtomId atom) const {
    TIEBREAK_CHECK(finalized_);
    TIEBREAK_CHECK_GE(atom, 0);
    TIEBREAK_CHECK_LT(atom, num_atoms());
  }

  GroundAtomStore atoms_;
  bool finalized_ = false;

  // Rule-node arenas; rule r's body occupies body_[body_offset_[r],
  // body_offset_[r+1]) with positives before pos_end_[r].
  std::vector<int32_t> rule_index_;
  std::vector<AtomId> head_;
  std::vector<int64_t> body_offset_{0};
  std::vector<int64_t> pos_end_;
  std::vector<AtomId> body_;
  std::vector<int64_t> binding_offset_{0};
  std::vector<ConstId> binding_;

  // CSR inverse indexes (built by Finalize).
  std::vector<int64_t> sup_offset_, pos_offset_, neg_offset_;
  std::vector<int32_t> supporters_, pos_consumers_, neg_consumers_;
};

/// Bulk Δ-membership: out[a] == 1 iff atom a of `atoms` is a fact of
/// `database`. One scan over Δ with store hash lookups — the flat
/// replacement for calling Database::Contains once per atom with a freshly
/// materialized Tuple (the pattern that regressed close-state
/// construction). Interpreters use it to initialize M0(Δ) / base facts.
std::vector<char> DeltaAtomMask(const Database& database,
                                const GroundAtomStore& atoms);

}  // namespace tiebreak

#endif  // TIEBREAK_GROUND_GROUND_GRAPH_H_
