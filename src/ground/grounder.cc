#include "ground/grounder.h"

#include <algorithm>
#include <string>
#include <utility>

#include "engine/evaluation.h"

namespace tiebreak {

std::vector<ConstId> ComputeUniverse(const Program& program,
                                     const Database& database) {
  // ConstIds are dense in [0, num_constants), so a seen-bitmap pass over
  // the flat fact arenas replaces the old gather-sort-unique (which sorted
  // one id per fact argument — millions of entries on the large EDBs).
  std::vector<char> seen(program.num_constants(), 0);
  for (PredId p = 0; p < database.num_predicates(); ++p) {
    const size_t total =
        static_cast<size_t>(database.NumFacts(p)) * database.arity(p);
    const ConstId* data = database.FactData(p);
    for (size_t i = 0; i < total; ++i) {
      // Facts normally only mention constants interned in the program; the
      // resize covers hand-built databases that outgrew the table, and the
      // CHECK rejects ids that were never valid constants at all.
      TIEBREAK_CHECK_GE(data[i], 0) << "negative ConstId in database";
      if (data[i] >= static_cast<ConstId>(seen.size())) {
        seen.resize(data[i] + 1, 0);
      }
      seen[data[i]] = 1;
    }
  }
  for (const Rule& rule : program.rules()) {
    auto scan = [&seen](const Atom& atom) {
      for (const Term& term : atom.args) {
        if (term.is_constant()) seen[term.index] = 1;
      }
    };
    scan(rule.head);
    for (const Literal& literal : rule.body) scan(literal.atom);
  }
  std::vector<ConstId> universe;
  for (ConstId c = 0; c < static_cast<ConstId>(seen.size()); ++c) {
    if (seen[c]) universe.push_back(c);
  }
  return universe;
}

namespace {

// Shared state for grounding one program.
class GrounderImpl {
 public:
  GrounderImpl(const Program& program, const Database& database,
               const GroundingOptions& options)
      : program_(program), database_(database), options_(options) {
    universe_ = ComputeUniverse(program, database);
  }

  Result<GroundingResult> Run() {
    // Δ's IDB atoms always become nodes: they carry initial truth values.
    // EDB atoms of Δ are nodes only without the EDB reduction.
    for (PredId p = 0; p < database_.num_predicates(); ++p) {
      if (program_.IsEdb(p) && options_.reduce_edb) continue;
      const int32_t arity = database_.arity(p);
      const ConstId* data = database_.FactData(p);
      const int64_t facts = database_.NumFacts(p);
      for (int64_t row = 0; row < facts; ++row) {
        graph_.atoms().Intern(p, data + row * arity, arity);
      }
    }
    if (options_.include_all_atoms) {
      Status s = InternAllAtoms();
      if (!s.ok()) return s;
    }
    if (options_.reduce_edb && options_.engine_bindings) {
      Status s = GroundReducedEngine();
      if (!s.ok()) return s;
    } else {
      for (int32_t r = 0; r < program_.num_rules(); ++r) {
        Status s = options_.reduce_edb ? GroundRuleReducedLegacy(r)
                                       : GroundRuleFaithful(r);
        if (!s.ok()) return s;
      }
    }
    graph_.Finalize();
    GroundingResult result;
    result.graph = std::move(graph_);
    result.universe = std::move(universe_);
    return result;
  }

 private:
  Status Budget() {
    if (++work_ > options_.max_instances) {
      return Status::ResourceExhausted(
          "grounding exceeded max_instances budget");
    }
    return Status::Ok();
  }

  Status InternAllAtoms() {
    for (PredId p = 0; p < program_.num_predicates(); ++p) {
      const int32_t arity = program_.predicate(p).arity;
      if (arity > 0 && universe_.empty()) continue;
      Tuple tuple(arity, arity > 0 ? universe_.front() : 0);
      std::vector<size_t> odo(arity, 0);
      while (true) {
        Status s = Budget();
        if (!s.ok()) return s;
        graph_.atoms().Intern(p, tuple.data(), arity);
        int32_t pos = arity - 1;
        while (pos >= 0) {
          if (++odo[pos] < universe_.size()) {
            tuple[pos] = universe_[odo[pos]];
            break;
          }
          odo[pos] = 0;
          tuple[pos] = universe_.front();
          --pos;
        }
        if (pos < 0) break;
      }
    }
    return Status::Ok();
  }

  // Substitutes `binding` into `atom`, writing the ground tuple into the
  // reusable scratch buffer (no allocation once warm).
  void SubstituteInto(const Atom& atom, const Tuple& binding, Tuple* out) {
    out->clear();
    for (const Term& term : atom.args) {
      if (term.is_constant()) {
        out->push_back(term.index);
      } else {
        TIEBREAK_CHECK_GE(binding[term.index], 0) << "unbound variable";
        out->push_back(binding[term.index]);
      }
    }
  }

  // ----------------------------- faithful ---------------------------------

  Status GroundRuleFaithful(int32_t rule_index) {
    const Rule& rule = program_.rule(rule_index);
    const int32_t k = rule.num_variables;
    if (k > 0 && universe_.empty()) return Status::Ok();
    Tuple binding(k, k > 0 ? universe_.front() : 0);
    std::vector<size_t> odo(k, 0);
    while (true) {
      Status s = Budget();
      if (!s.ok()) return s;
      EmitFaithfulInstance(rule_index, rule, binding);
      int32_t pos = k - 1;
      while (pos >= 0) {
        if (++odo[pos] < universe_.size()) {
          binding[pos] = universe_[odo[pos]];
          break;
        }
        odo[pos] = 0;
        binding[pos] = universe_.front();
        --pos;
      }
      if (pos < 0) break;
    }
    return Status::Ok();
  }

  void EmitFaithfulInstance(int32_t rule_index, const Rule& rule,
                            const Tuple& binding) {
    scratch_pos_.clear();
    scratch_neg_.clear();
    for (const Literal& literal : rule.body) {
      SubstituteInto(literal.atom, binding, &scratch_tuple_);
      const AtomId atom = graph_.atoms().Intern(
          literal.atom.predicate, scratch_tuple_.data(),
          static_cast<int32_t>(scratch_tuple_.size()));
      (literal.positive ? scratch_pos_ : scratch_neg_).push_back(atom);
    }
    SubstituteInto(rule.head, binding, &scratch_tuple_);
    const AtomId head = graph_.atoms().Intern(
        rule.head.predicate, scratch_tuple_.data(),
        static_cast<int32_t>(scratch_tuple_.size()));
    graph_.AppendRule(
        rule_index, head, scratch_pos_.data(),
        static_cast<int32_t>(scratch_pos_.size()), scratch_neg_.data(),
        static_cast<int32_t>(scratch_neg_.size()), binding.data(),
        options_.record_bindings ? static_cast<int32_t>(binding.size()) : 0);
  }

  // ----------------------------- reduced ----------------------------------

  // Indexes of the positive EDB literals of `rule` (the generators matched
  // against Δ).
  std::vector<int32_t> GeneratorsOf(const Rule& rule) const {
    std::vector<int32_t> generators;
    for (int32_t b = 0; b < static_cast<int32_t>(rule.body.size()); ++b) {
      const Literal& literal = rule.body[b];
      if (literal.positive && program_.IsEdb(literal.atom.predicate)) {
        generators.push_back(b);
      }
    }
    return generators;
  }

  // Engine-backed reduced grounding: compile each rule's generator
  // conjunction into a "binding rule" over a derived program, evaluate the
  // whole batch with the relational engine, then stream the materialized
  // binding rows into instance emission. See grounder.h.
  Status GroundReducedEngine() {
    // Per-rule binding plans.
    struct BindPlan {
      std::vector<int32_t> generators;
      std::vector<int32_t> bound_vars;  // ascending variable indexes
      PredId bind_pred = -1;            // in the binding program
      bool legacy = false;              // fallback: backtracking join
    };
    std::vector<BindPlan> plans(program_.num_rules());

    bool engine_eligible = true;
    for (PredId p = 0; p < program_.num_predicates(); ++p) {
      if (program_.predicate(p).arity > kEngineMaxArity) {
        engine_eligible = false;  // the engine rejects the whole program
      }
    }

    bool any_engine = false;
    Program bind_program;
    if (engine_eligible) {
      // Reproduce the vocabulary with identical predicate/constant ids.
      for (PredId p = 0; p < program_.num_predicates(); ++p) {
        bind_program.DeclarePredicate(program_.predicate_name(p),
                                      program_.predicate(p).arity);
      }
      for (ConstId c = 0; c < program_.num_constants(); ++c) {
        bind_program.InternConstant(program_.constant_name(c));
      }
    }

    for (int32_t r = 0; r < program_.num_rules(); ++r) {
      const Rule& rule = program_.rule(r);
      BindPlan& plan = plans[r];
      plan.generators = GeneratorsOf(rule);
      if (plan.generators.empty()) continue;  // pure free-var enumeration
      std::vector<char> bound(rule.num_variables, 0);
      for (int32_t b : plan.generators) {
        for (const Term& term : rule.body[b].atom.args) {
          if (term.is_variable()) bound[term.index] = 1;
        }
      }
      for (int32_t v = 0; v < rule.num_variables; ++v) {
        if (bound[v]) plan.bound_vars.push_back(v);
      }
      if (!engine_eligible ||
          static_cast<int32_t>(plan.bound_vars.size()) > kEngineMaxArity) {
        plan.legacy = true;
        continue;
      }
      // Declare $bind<r>(bound vars) :- generators.
      std::string name = "$bind" + std::to_string(r);
      while (bind_program.LookupPredicate(name) >= 0) name += "_";
      plan.bind_pred = bind_program.DeclarePredicate(
          name, static_cast<int32_t>(plan.bound_vars.size()));
      Rule bind_rule;
      bind_rule.head.predicate = plan.bind_pred;
      for (int32_t v : plan.bound_vars) {
        bind_rule.head.args.push_back(Term::Variable(v));
      }
      for (int32_t b : plan.generators) bind_rule.body.push_back(rule.body[b]);
      bind_rule.num_variables = rule.num_variables;
      bind_rule.variable_names = rule.variable_names;
      bind_program.AddRule(std::move(bind_rule));
      any_engine = true;
    }

    // One engine run computes every rule's binding relation: the EDB facts
    // are bulk-copied once, join plans are compiled and cached per rule,
    // and the vectorized kernels enumerate all matches.
    Database bindings(program_);  // placeholder; replaced when engine runs
    const Database* bound_db = nullptr;
    if (any_engine) {
      Status valid = bind_program.Validate();
      TIEBREAK_CHECK(valid.ok()) << valid.ToString();
      Database edb(bind_program);
      int64_t edb_facts = 0;
      for (PredId p = 0; p < program_.num_predicates(); ++p) {
        if (!program_.IsEdb(p) || database_.NumFacts(p) == 0) continue;
        edb_facts += database_.NumFacts(p);
        if (database_.arity(p) == 0) {
          edb.InsertProposition(p);
          continue;
        }
        const ConstId* data = database_.FactData(p);
        std::vector<ConstId> copy(
            data, data + database_.NumFacts(p) *
                             static_cast<int64_t>(database_.arity(p)));
        edb.BulkLoadFlat(p, std::move(copy));
      }
      EngineOptions engine_options;
      // The engine's tuple budget counts the loaded EDB too; charge only
      // the derived binding rows against the grounding budget.
      engine_options.max_tuples = options_.max_instances + edb_facts;
      engine_options.num_threads = 1;
      // Only the $bind relations are read back; don't copy the EDB into
      // the result.
      engine_options.materialize_edb = false;
      Result<Database> result =
          EvaluateStratified(bind_program, edb, engine_options);
      if (result.ok()) {
        bindings = std::move(result).value();
        bound_db = &bindings;
      } else if (result.status().code() == StatusCode::kResourceExhausted) {
        // More binding rows than the instance budget allows: emission
        // could never fit either.
        return Status::ResourceExhausted(
            "grounding exceeded max_instances budget");
      } else {
        // Any other engine rejection (e.g. an arity past its relational
        // cap that slipped through the plan check): fall back to the
        // legacy join for every engine-planned rule rather than failing a
        // grounding the backtracking path can do.
        for (BindPlan& plan : plans) {
          if (plan.bind_pred >= 0) plan.legacy = true;
        }
      }
    }

    // Pre-size the rule arenas from the known binding counts (free-var
    // enumeration can only add more; the reserve is advisory).
    if (bound_db != nullptr) {
      int64_t total_rows = 0;
      int64_t total_body = 0;
      for (int32_t r = 0; r < program_.num_rules(); ++r) {
        const BindPlan& plan = plans[r];
        if (plan.legacy || plan.generators.empty()) continue;
        const int64_t rows = bound_db->NumFacts(plan.bind_pred);
        int64_t idb_literals = 0;
        for (const Literal& literal : program_.rule(r).body) {
          if (!program_.IsEdb(literal.atom.predicate)) ++idb_literals;
        }
        total_rows += rows;
        total_body += rows * idb_literals;
      }
      graph_.ReserveRules(total_rows, total_body);
    }

    // Emit instances rule by rule, in rule order (bindings iterate in the
    // result database's sorted order). The per-rule free-variable set is
    // computed once and the odometer scratch is reused, so the per-row
    // loop performs no heap allocation at all.
    Tuple binding;
    std::vector<int32_t> free_vars;
    for (int32_t r = 0; r < program_.num_rules(); ++r) {
      const Rule& rule = program_.rule(r);
      const BindPlan& plan = plans[r];
      if (plan.legacy) {
        Status s = GroundRuleReducedLegacy(r);
        if (!s.ok()) return s;
        continue;
      }
      binding.assign(rule.num_variables, -1);
      if (plan.generators.empty()) {
        Status s = EnumerateFreeVariables(r, rule, &binding);
        if (!s.ok()) return s;
        continue;
      }
      TIEBREAK_CHECK(bound_db != nullptr);
      free_vars.clear();
      {
        std::vector<char> bound(rule.num_variables, 0);
        for (int32_t v : plan.bound_vars) bound[v] = 1;
        for (int32_t v = 0; v < rule.num_variables; ++v) {
          if (!bound[v]) free_vars.push_back(v);
        }
      }
      const int32_t arity = static_cast<int32_t>(plan.bound_vars.size());
      const ConstId* data = bound_db->FactData(plan.bind_pred);
      const int64_t rows = bound_db->NumFacts(plan.bind_pred);
      for (int64_t row = 0; row < rows; ++row) {
        Status s = Budget();
        if (!s.ok()) return s;
        const ConstId* values = data + row * arity;
        for (int32_t j = 0; j < arity; ++j) {
          binding[plan.bound_vars[j]] = values[j];
        }
        if (free_vars.empty()) {
          EmitReducedInstance(r, rule, binding);
        } else {
          s = EnumerateOver(r, rule, free_vars, &binding);
          if (!s.ok()) return s;
        }
      }
    }
    return Status::Ok();
  }

  // Legacy reduced grounding of one rule: tuple-at-a-time backtracking
  // join of the generators against Δ (the seed implementation; reference
  // for the engine path and fallback past the engine's arity cap).
  Status GroundRuleReducedLegacy(int32_t rule_index) {
    const Rule& rule = program_.rule(rule_index);
    const std::vector<int32_t> generators = GeneratorsOf(rule);
    Tuple binding(rule.num_variables, -1);
    return MatchGenerators(rule_index, rule, generators, 0, &binding);
  }

  Status MatchGenerators(int32_t rule_index, const Rule& rule,
                         const std::vector<int32_t>& generators, size_t g,
                         Tuple* binding) {
    if (g == generators.size()) {
      return EnumerateFreeVariables(rule_index, rule, binding);
    }
    const Atom& atom = rule.body[generators[g]].atom;
    const PredId pred = atom.predicate;
    const int32_t arity = database_.arity(pred);
    const ConstId* data = database_.FactData(pred);
    const int64_t facts = database_.NumFacts(pred);
    for (int64_t row = 0; row < facts; ++row) {
      const ConstId* tuple = data + row * arity;
      Status s = Budget();
      if (!s.ok()) return s;
      // Try to unify `atom` with `tuple` under the current partial binding.
      std::vector<int32_t> bound_here;
      bool match = true;
      for (size_t i = 0; i < atom.args.size(); ++i) {
        const Term& term = atom.args[i];
        if (term.is_constant()) {
          if (term.index != tuple[i]) {
            match = false;
            break;
          }
        } else if ((*binding)[term.index] >= 0) {
          if ((*binding)[term.index] != tuple[i]) {
            match = false;
            break;
          }
        } else {
          (*binding)[term.index] = tuple[i];
          bound_here.push_back(term.index);
        }
      }
      if (match) {
        s = MatchGenerators(rule_index, rule, generators, g + 1, binding);
        if (!s.ok()) return s;
      }
      for (int32_t var : bound_here) (*binding)[var] = -1;
    }
    return Status::Ok();
  }

  Status EnumerateFreeVariables(int32_t rule_index, const Rule& rule,
                                Tuple* binding) {
    std::vector<int32_t> free_vars;
    for (int32_t v = 0; v < rule.num_variables; ++v) {
      if ((*binding)[v] < 0) free_vars.push_back(v);
    }
    return EnumerateOver(rule_index, rule, free_vars, binding);
  }

  // Emits one instance per assignment of `free_vars` over the universe
  // (one instance outright when `free_vars` is empty). The odometer lives
  // in member scratch: the engine-backed path calls this once per binding
  // row. Leaves the free variables reset to -1.
  Status EnumerateOver(int32_t rule_index, const Rule& rule,
                       const std::vector<int32_t>& free_vars,
                       Tuple* binding) {
    if (!free_vars.empty() && universe_.empty()) return Status::Ok();
    scratch_odo_.assign(free_vars.size(), 0);
    for (int32_t var : free_vars) (*binding)[var] = universe_.front();
    while (true) {
      Status s = Budget();
      if (!s.ok()) {
        for (int32_t var : free_vars) (*binding)[var] = -1;
        return s;
      }
      EmitReducedInstance(rule_index, rule, *binding);
      int32_t pos = static_cast<int32_t>(free_vars.size()) - 1;
      while (pos >= 0) {
        if (++scratch_odo_[pos] < universe_.size()) {
          (*binding)[free_vars[pos]] = universe_[scratch_odo_[pos]];
          break;
        }
        scratch_odo_[pos] = 0;
        (*binding)[free_vars[pos]] = universe_.front();
        --pos;
      }
      if (pos < 0) break;
    }
    for (int32_t var : free_vars) (*binding)[var] = -1;
    return Status::Ok();
  }

  void EmitReducedInstance(int32_t rule_index, const Rule& rule,
                           const Tuple& binding) {
    scratch_pos_.clear();
    scratch_neg_.clear();
    for (const Literal& literal : rule.body) {
      const PredId pred = literal.atom.predicate;
      if (program_.IsEdb(pred)) {
        if (literal.positive) continue;  // matched against Δ already
        // Negated EDB literal: a true EDB atom kills the instance outright
        // (the first close would delete this rule node); a false one is a
        // satisfied literal and leaves no edge.
        SubstituteInto(literal.atom, binding, &scratch_tuple_);
        if (database_.ContainsRow(pred, scratch_tuple_.data())) return;
        continue;
      }
      SubstituteInto(literal.atom, binding, &scratch_tuple_);
      const AtomId atom = graph_.atoms().Intern(
          pred, scratch_tuple_.data(),
          static_cast<int32_t>(scratch_tuple_.size()));
      (literal.positive ? scratch_pos_ : scratch_neg_).push_back(atom);
    }
    SubstituteInto(rule.head, binding, &scratch_tuple_);
    const AtomId head = graph_.atoms().Intern(
        rule.head.predicate, scratch_tuple_.data(),
        static_cast<int32_t>(scratch_tuple_.size()));
    graph_.AppendRule(
        rule_index, head, scratch_pos_.data(),
        static_cast<int32_t>(scratch_pos_.size()), scratch_neg_.data(),
        static_cast<int32_t>(scratch_neg_.size()), binding.data(),
        options_.record_bindings ? static_cast<int32_t>(binding.size()) : 0);
  }

  const Program& program_;
  const Database& database_;
  const GroundingOptions& options_;
  std::vector<ConstId> universe_;
  GroundGraph graph_;
  int64_t work_ = 0;
  // Reusable emission scratch (no per-instance heap allocation).
  Tuple scratch_tuple_;
  std::vector<AtomId> scratch_pos_;
  std::vector<AtomId> scratch_neg_;
  std::vector<size_t> scratch_odo_;
};

}  // namespace

Result<GroundingResult> Ground(const Program& program,
                               const Database& database,
                               const GroundingOptions& options) {
  TIEBREAK_CHECK_EQ(program.num_predicates(), database.num_predicates())
      << "database was built for a different program";
  GrounderImpl impl(program, database, options);
  return impl.Run();
}

}  // namespace tiebreak
