#include "ground/grounder.h"

#include <algorithm>

namespace tiebreak {

std::vector<ConstId> ComputeUniverse(const Program& program,
                                     const Database& database) {
  std::vector<ConstId> universe = database.ReferencedConstants();
  for (const Rule& rule : program.rules()) {
    auto scan = [&universe](const Atom& atom) {
      for (const Term& term : atom.args) {
        if (term.is_constant()) universe.push_back(term.index);
      }
    };
    scan(rule.head);
    for (const Literal& literal : rule.body) scan(literal.atom);
  }
  std::sort(universe.begin(), universe.end());
  universe.erase(std::unique(universe.begin(), universe.end()),
                 universe.end());
  return universe;
}

namespace {

// Shared state for grounding one program.
class GrounderImpl {
 public:
  GrounderImpl(const Program& program, const Database& database,
               const GroundingOptions& options)
      : program_(program), database_(database), options_(options) {
    universe_ = ComputeUniverse(program, database);
  }

  Result<GroundingResult> Run() {
    // Δ's IDB atoms always become nodes: they carry initial truth values.
    // EDB atoms of Δ are nodes only without the EDB reduction.
    for (PredId p = 0; p < database_.num_predicates(); ++p) {
      if (program_.IsEdb(p) && options_.reduce_edb) continue;
      for (const Tuple& tuple : database_.Relation(p)) {
        graph_.atoms().Intern(p, tuple);
      }
    }
    if (options_.include_all_atoms) {
      Status s = InternAllAtoms();
      if (!s.ok()) return s;
    }
    for (int32_t r = 0; r < program_.num_rules(); ++r) {
      Status s = options_.reduce_edb ? GroundRuleReduced(r)
                                     : GroundRuleFaithful(r);
      if (!s.ok()) return s;
    }
    graph_.Finalize();
    GroundingResult result;
    result.graph = std::move(graph_);
    result.universe = std::move(universe_);
    return result;
  }

 private:
  Status Budget() {
    if (++work_ > options_.max_instances) {
      return Status::ResourceExhausted(
          "grounding exceeded max_instances budget");
    }
    return Status::Ok();
  }

  Status InternAllAtoms() {
    for (PredId p = 0; p < program_.num_predicates(); ++p) {
      const int32_t arity = program_.predicate(p).arity;
      if (arity > 0 && universe_.empty()) continue;
      Tuple tuple(arity, arity > 0 ? universe_.front() : 0);
      std::vector<size_t> odo(arity, 0);
      while (true) {
        Status s = Budget();
        if (!s.ok()) return s;
        graph_.atoms().Intern(p, tuple);
        int32_t pos = arity - 1;
        while (pos >= 0) {
          if (++odo[pos] < universe_.size()) {
            tuple[pos] = universe_[odo[pos]];
            break;
          }
          odo[pos] = 0;
          tuple[pos] = universe_.front();
          --pos;
        }
        if (pos < 0) break;
      }
    }
    return Status::Ok();
  }

  // Substitutes `binding` into `atom`, producing a ground tuple.
  Tuple Substitute(const Atom& atom, const Tuple& binding) const {
    Tuple tuple;
    tuple.reserve(atom.args.size());
    for (const Term& term : atom.args) {
      if (term.is_constant()) {
        tuple.push_back(term.index);
      } else {
        TIEBREAK_CHECK_GE(binding[term.index], 0) << "unbound variable";
        tuple.push_back(binding[term.index]);
      }
    }
    return tuple;
  }

  // ----------------------------- faithful ---------------------------------

  Status GroundRuleFaithful(int32_t rule_index) {
    const Rule& rule = program_.rule(rule_index);
    const int32_t k = rule.num_variables;
    if (k > 0 && universe_.empty()) return Status::Ok();
    Tuple binding(k, k > 0 ? universe_.front() : 0);
    std::vector<size_t> odo(k, 0);
    while (true) {
      Status s = Budget();
      if (!s.ok()) return s;
      EmitFaithfulInstance(rule_index, rule, binding);
      int32_t pos = k - 1;
      while (pos >= 0) {
        if (++odo[pos] < universe_.size()) {
          binding[pos] = universe_[odo[pos]];
          break;
        }
        odo[pos] = 0;
        binding[pos] = universe_.front();
        --pos;
      }
      if (pos < 0) break;
    }
    return Status::Ok();
  }

  void EmitFaithfulInstance(int32_t rule_index, const Rule& rule,
                            const Tuple& binding) {
    RuleInstance inst;
    inst.rule_index = rule_index;
    inst.binding = binding;
    inst.head = graph_.atoms().Intern(rule.head.predicate,
                                      Substitute(rule.head, binding));
    for (const Literal& literal : rule.body) {
      const AtomId atom = graph_.atoms().Intern(
          literal.atom.predicate, Substitute(literal.atom, binding));
      (literal.positive ? inst.positive_body : inst.negative_body)
          .push_back(atom);
    }
    graph_.AddRuleInstance(std::move(inst));
  }

  // ----------------------------- reduced ----------------------------------

  Status GroundRuleReduced(int32_t rule_index) {
    const Rule& rule = program_.rule(rule_index);
    // Positive EDB literals act as generators (matched against Δ); all other
    // literals are emitted as graph edges or checked as filters afterwards.
    std::vector<int32_t> generators;
    for (int32_t b = 0; b < static_cast<int32_t>(rule.body.size()); ++b) {
      const Literal& literal = rule.body[b];
      if (literal.positive && program_.IsEdb(literal.atom.predicate)) {
        generators.push_back(b);
      }
    }
    Tuple binding(rule.num_variables, -1);
    return MatchGenerators(rule_index, rule, generators, 0, &binding);
  }

  Status MatchGenerators(int32_t rule_index, const Rule& rule,
                         const std::vector<int32_t>& generators, size_t g,
                         Tuple* binding) {
    if (g == generators.size()) {
      return EnumerateFreeVariables(rule_index, rule, binding);
    }
    const Atom& atom = rule.body[generators[g]].atom;
    for (const Tuple& tuple : database_.Relation(atom.predicate)) {
      Status s = Budget();
      if (!s.ok()) return s;
      // Try to unify `atom` with `tuple` under the current partial binding.
      std::vector<int32_t> bound_here;
      bool match = true;
      for (size_t i = 0; i < atom.args.size(); ++i) {
        const Term& term = atom.args[i];
        if (term.is_constant()) {
          if (term.index != tuple[i]) {
            match = false;
            break;
          }
        } else if ((*binding)[term.index] >= 0) {
          if ((*binding)[term.index] != tuple[i]) {
            match = false;
            break;
          }
        } else {
          (*binding)[term.index] = tuple[i];
          bound_here.push_back(term.index);
        }
      }
      if (match) {
        s = MatchGenerators(rule_index, rule, generators, g + 1, binding);
        if (!s.ok()) return s;
      }
      for (int32_t var : bound_here) (*binding)[var] = -1;
    }
    return Status::Ok();
  }

  Status EnumerateFreeVariables(int32_t rule_index, const Rule& rule,
                                Tuple* binding) {
    std::vector<int32_t> free_vars;
    for (int32_t v = 0; v < rule.num_variables; ++v) {
      if ((*binding)[v] < 0) free_vars.push_back(v);
    }
    if (!free_vars.empty() && universe_.empty()) return Status::Ok();
    std::vector<size_t> odo(free_vars.size(), 0);
    for (int32_t var : free_vars) (*binding)[var] = universe_.front();
    while (true) {
      Status s = Budget();
      if (!s.ok()) {
        for (int32_t var : free_vars) (*binding)[var] = -1;
        return s;
      }
      EmitReducedInstance(rule_index, rule, *binding);
      int32_t pos = static_cast<int32_t>(free_vars.size()) - 1;
      while (pos >= 0) {
        if (++odo[pos] < universe_.size()) {
          (*binding)[free_vars[pos]] = universe_[odo[pos]];
          break;
        }
        odo[pos] = 0;
        (*binding)[free_vars[pos]] = universe_.front();
        --pos;
      }
      if (pos < 0) break;
    }
    for (int32_t var : free_vars) (*binding)[var] = -1;
    return Status::Ok();
  }

  void EmitReducedInstance(int32_t rule_index, const Rule& rule,
                           const Tuple& binding) {
    RuleInstance inst;
    inst.rule_index = rule_index;
    inst.binding = binding;
    for (const Literal& literal : rule.body) {
      const PredId pred = literal.atom.predicate;
      if (program_.IsEdb(pred)) {
        if (literal.positive) continue;  // matched against Δ already
        // Negated EDB literal: a true EDB atom kills the instance outright
        // (the first close would delete this rule node); a false one is a
        // satisfied literal and leaves no edge.
        if (database_.Contains(pred, Substitute(literal.atom, binding))) {
          return;
        }
        continue;
      }
      const AtomId atom =
          graph_.atoms().Intern(pred, Substitute(literal.atom, binding));
      (literal.positive ? inst.positive_body : inst.negative_body)
          .push_back(atom);
    }
    inst.head = graph_.atoms().Intern(rule.head.predicate,
                                      Substitute(rule.head, binding));
    graph_.AddRuleInstance(std::move(inst));
  }

  const Program& program_;
  const Database& database_;
  const GroundingOptions& options_;
  std::vector<ConstId> universe_;
  GroundGraph graph_;
  int64_t work_ = 0;
};

}  // namespace

Result<GroundingResult> Ground(const Program& program,
                               const Database& database,
                               const GroundingOptions& options) {
  TIEBREAK_CHECK_EQ(program.num_predicates(), database.num_predicates())
      << "database was built for a different program";
  GrounderImpl impl(program, database, options);
  return impl.Run();
}

}  // namespace tiebreak
