#include "ground/grounder.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <utility>

#include "engine/evaluation.h"
#include "util/execution_context.h"
#include "util/thread_pool.h"

namespace tiebreak {

std::vector<ConstId> ComputeUniverse(const Program& program,
                                     const Database& database) {
  // ConstIds are dense in [0, num_constants), so a seen-bitmap pass over
  // the flat fact arenas replaces the old gather-sort-unique (which sorted
  // one id per fact argument — millions of entries on the large EDBs).
  std::vector<char> seen(program.num_constants(), 0);
  for (PredId p = 0; p < database.num_predicates(); ++p) {
    const size_t total =
        static_cast<size_t>(database.NumFacts(p)) * database.arity(p);
    const ConstId* data = database.FactData(p);
    for (size_t i = 0; i < total; ++i) {
      // Facts normally only mention constants interned in the program; the
      // resize covers hand-built databases that outgrew the table, and the
      // CHECK rejects ids that were never valid constants at all.
      TIEBREAK_CHECK_GE(data[i], 0) << "negative ConstId in database";
      if (data[i] >= static_cast<ConstId>(seen.size())) {
        seen.resize(data[i] + 1, 0);
      }
      seen[data[i]] = 1;
    }
  }
  for (const Rule& rule : program.rules()) {
    auto scan = [&seen](const Atom& atom) {
      for (const Term& term : atom.args) {
        if (term.is_constant()) seen[term.index] = 1;
      }
    };
    scan(rule.head);
    for (const Literal& literal : rule.body) scan(literal.atom);
  }
  std::vector<ConstId> universe;
  for (ConstId c = 0; c < static_cast<ConstId>(seen.size()); ++c) {
    if (seen[c]) universe.push_back(c);
  }
  return universe;
}

namespace {

// Binding rows per block in the batched emission path: bounded by the
// 64-bit live mask, and small enough that a block's substituted atoms and
// intern keys stay L1-resident.
constexpr int32_t kEmitBlock = 64;
// Minimum binding rows per parallel emission shard; a rule's binding
// relation splits into at most 4 × threads shards above it.
constexpr int64_t kMinEmitShardRows = 1024;
// Budget increments a shard context accumulates before flushing them into
// the shared atomic counter (a locked add per emitted row would tax the
// hot loop; the trip decision stays deterministic because the total work
// is fixed by the job list).
constexpr int64_t kWorkFlushBlock = 256;

// Shared state for grounding one program.
class GrounderImpl {
 public:
  GrounderImpl(const Program& program, const Database& database,
               const GroundingOptions& options)
      : program_(program),
        database_(database),
        options_(options),
        exec_(options.context) {
    universe_ = ComputeUniverse(program, database);
    num_threads_ = ThreadPool::EffectiveThreads(options.num_threads);
  }

  Result<GroundingResult> Run() {
    // Entry checkpoint: an already-tripped context (pre-cancelled,
    // pre-expired deadline) fails here before any work, identically for
    // every thread count.
    if (exec_ != nullptr) {
      Status entry = exec_->Checkpoint("ground", 1);
      if (!entry.ok()) return entry;
    }
    if (num_threads_ > 1) pool_ = std::make_unique<ThreadPool>(num_threads_);
    root_ctx_.graph = &graph_;
    // Δ's IDB atoms always become nodes: they carry initial truth values.
    // EDB atoms of Δ are nodes only without the EDB reduction.
    for (PredId p = 0; p < database_.num_predicates(); ++p) {
      if (program_.IsEdb(p) && options_.reduce_edb) continue;
      const int32_t arity = database_.arity(p);
      const ConstId* data = database_.FactData(p);
      const int64_t facts = database_.NumFacts(p);
      for (int64_t row = 0; row < facts; ++row) {
        graph_.atoms().Intern(p, data + row * arity, arity);
      }
    }
    if (options_.include_all_atoms) {
      Status s = InternAllAtoms();
      if (!s.ok()) return s;
    }
    if (options_.reduce_edb && options_.engine_bindings) {
      Status s = GroundReducedEngine();
      if (!s.ok()) return s;
    } else if (options_.reduce_edb && num_threads_ > 1) {
      // Legacy bindings, parallel: one backtracking-join job per rule.
      std::vector<EmitJob> jobs;
      for (int32_t r = 0; r < program_.num_rules(); ++r) {
        jobs.push_back(EmitJob{r, /*whole_rule=*/true, 0, 0});
      }
      Status s = EmitJobs(/*plans=*/nullptr, /*bound_db=*/nullptr, jobs);
      if (!s.ok()) return s;
    } else {
      for (int32_t r = 0; r < program_.num_rules(); ++r) {
        Status s = options_.reduce_edb
                       ? GroundRuleReducedLegacy(&root_ctx_, r)
                       : GroundRuleFaithful(r);
        if (!s.ok()) return s;
      }
    }
    // Final deadline check before the CSR index builds; a trip during the
    // last emission block that no path returned yet also surfaces here.
    if (exec_ != nullptr) {
      Status final_check = exec_->CheckNow("ground");
      if (!final_check.ok()) return final_check;
    }
    graph_.Finalize(pool_.get());
    GroundingResult result;
    result.graph = std::move(graph_);
    result.universe = std::move(universe_);
    return result;
  }

 private:
  // Per-worker emission state: the target graph (the final graph on the
  // serial path, a private shard during parallel emission) plus every
  // piece of reusable scratch, so no emission path allocates per instance
  // and workers never share mutable state.
  struct EmitContext {
    GroundGraph* graph = nullptr;
    bool parallel = false;     // charge the budget through the shared atomic
    int64_t pending_work = 0;  // budget increments not yet flushed
    Tuple binding;
    Tuple scratch_tuple;
    std::vector<AtomId> scratch_pos;
    std::vector<AtomId> scratch_neg;
    std::vector<size_t> scratch_odo;
    std::vector<int32_t> scratch_free_vars;
    // Batched-emission scratch: one block's substituted argument tuples,
    // their intern keys, per-row intern counts, and (only under
    // record_bindings) the full per-row variable bindings.
    std::vector<ConstId> block_args;
    std::vector<uint64_t> block_keys;
    std::vector<ConstId> block_bindings;
    int32_t block_interned[kEmitBlock] = {};
  };

  // One parallel emission job: either a row range of one rule's binding
  // relation, or a whole rule grounded by the backtracking join /
  // free-variable enumeration.
  struct EmitJob {
    int32_t rule = -1;
    bool whole_rule = false;
    int64_t row_begin = 0;
    int64_t row_end = 0;
  };

  // Per-rule binding plan of the engine-backed path.
  struct BindPlan {
    std::vector<int32_t> generators;
    std::vector<int32_t> bound_vars;  // ascending variable indexes
    PredId bind_pred = -1;            // in the binding program
    bool legacy = false;              // fallback: backtracking join
  };

  static Status Exhausted() {
    return Status::ResourceExhausted(
        "grounding exceeded max_instances budget");
  }

  // Budget bookkeeping: one unit per explored binding / emitted instance.
  // Serial contexts count on the plain member; shard contexts batch
  // increments into the shared atomic (kWorkFlushBlock at a time) and poll
  // the stop flag. The parallel trip decision is deterministic: the job
  // list fixes the total work, so the counter crosses the budget iff the
  // serial path's would.
  Status Budget(EmitContext* ctx) {
    if (!ctx->parallel) {
      if (++work_ > options_.max_instances) return Exhausted();
      // Resource checkpoint amortized over kWorkFlushBlock emissions — the
      // serial analogue of FlushWork's per-flush checkpoint.
      if (exec_ != nullptr && (work_ & (kWorkFlushBlock - 1)) == 0) {
        Status s = exec_->Checkpoint("ground", kWorkFlushBlock);
        if (!s.ok()) return s;
      }
      return Status::Ok();
    }
    if (++ctx->pending_work >= kWorkFlushBlock) FlushWork(ctx);
    if (stop_.load(std::memory_order_relaxed)) return TripStatus();
    return Status::Ok();
  }

  // What a tripped stop flag means: the shared context's trip if it has
  // one (cancellation / deadline / its budgets), the instance budget
  // otherwise.
  Status TripStatus() const {
    if (exec_ != nullptr && exec_->stopped()) return exec_->status();
    return Exhausted();
  }

  void FlushWork(EmitContext* ctx) {
    if (ctx->pending_work == 0) return;
    const int64_t flushed = ctx->pending_work;
    const int64_t total =
        shared_work_.fetch_add(flushed, std::memory_order_relaxed) + flushed;
    ctx->pending_work = 0;
    if (total > options_.max_instances) {
      stop_.store(true, std::memory_order_relaxed);
    }
    if (exec_ != nullptr && !exec_->Checkpoint("ground", flushed).ok()) {
      stop_.store(true, std::memory_order_relaxed);
    }
  }

  Status InternAllAtoms() {
    for (PredId p = 0; p < program_.num_predicates(); ++p) {
      const int32_t arity = program_.predicate(p).arity;
      if (arity > 0 && universe_.empty()) continue;
      Tuple tuple(arity, arity > 0 ? universe_.front() : 0);
      std::vector<size_t> odo(arity, 0);
      while (true) {
        Status s = Budget(&root_ctx_);
        if (!s.ok()) return s;
        graph_.atoms().Intern(p, tuple.data(), arity);
        int32_t pos = arity - 1;
        while (pos >= 0) {
          if (++odo[pos] < universe_.size()) {
            tuple[pos] = universe_[odo[pos]];
            break;
          }
          odo[pos] = 0;
          tuple[pos] = universe_.front();
          --pos;
        }
        if (pos < 0) break;
      }
    }
    return Status::Ok();
  }

  // Substitutes `binding` into `atom`, writing the ground tuple into the
  // reusable scratch buffer (no allocation once warm).
  void SubstituteInto(const Atom& atom, const Tuple& binding, Tuple* out) {
    out->clear();
    for (const Term& term : atom.args) {
      if (term.is_constant()) {
        out->push_back(term.index);
      } else {
        TIEBREAK_CHECK_GE(binding[term.index], 0) << "unbound variable";
        out->push_back(binding[term.index]);
      }
    }
  }

  // ----------------------------- faithful ---------------------------------

  Status GroundRuleFaithful(int32_t rule_index) {
    const Rule& rule = program_.rule(rule_index);
    const int32_t k = rule.num_variables;
    if (k > 0 && universe_.empty()) return Status::Ok();
    Tuple binding(k, k > 0 ? universe_.front() : 0);
    std::vector<size_t> odo(k, 0);
    while (true) {
      Status s = Budget(&root_ctx_);
      if (!s.ok()) return s;
      EmitFaithfulInstance(rule_index, rule, binding);
      int32_t pos = k - 1;
      while (pos >= 0) {
        if (++odo[pos] < universe_.size()) {
          binding[pos] = universe_[odo[pos]];
          break;
        }
        odo[pos] = 0;
        binding[pos] = universe_.front();
        --pos;
      }
      if (pos < 0) break;
    }
    return Status::Ok();
  }

  void EmitFaithfulInstance(int32_t rule_index, const Rule& rule,
                            const Tuple& binding) {
    EmitContext* ctx = &root_ctx_;
    ctx->scratch_pos.clear();
    ctx->scratch_neg.clear();
    for (const Literal& literal : rule.body) {
      SubstituteInto(literal.atom, binding, &ctx->scratch_tuple);
      const AtomId atom = graph_.atoms().Intern(
          literal.atom.predicate, ctx->scratch_tuple.data(),
          static_cast<int32_t>(ctx->scratch_tuple.size()));
      (literal.positive ? ctx->scratch_pos : ctx->scratch_neg)
          .push_back(atom);
    }
    SubstituteInto(rule.head, binding, &ctx->scratch_tuple);
    const AtomId head = graph_.atoms().Intern(
        rule.head.predicate, ctx->scratch_tuple.data(),
        static_cast<int32_t>(ctx->scratch_tuple.size()));
    graph_.AppendRule(
        rule_index, head, ctx->scratch_pos.data(),
        static_cast<int32_t>(ctx->scratch_pos.size()),
        ctx->scratch_neg.data(),
        static_cast<int32_t>(ctx->scratch_neg.size()), binding.data(),
        options_.record_bindings ? static_cast<int32_t>(binding.size()) : 0);
  }

  // ----------------------------- reduced ----------------------------------

  // Indexes of the positive EDB literals of `rule` (the generators matched
  // against Δ).
  std::vector<int32_t> GeneratorsOf(const Rule& rule) const {
    std::vector<int32_t> generators;
    for (int32_t b = 0; b < static_cast<int32_t>(rule.body.size()); ++b) {
      const Literal& literal = rule.body[b];
      if (literal.positive && program_.IsEdb(literal.atom.predicate)) {
        generators.push_back(b);
      }
    }
    return generators;
  }

  // Engine-backed reduced grounding: compile each rule's generator
  // conjunction into a "binding rule" over a derived program, evaluate the
  // whole batch with the relational engine (borrowing Δ's fact arenas —
  // zero copies in), then stream the materialized binding rows into
  // instance emission, batched and (num_threads > 1) sharded over the
  // pool. See grounder.h.
  Status GroundReducedEngine() {
    std::vector<BindPlan> plans(program_.num_rules());

    bool engine_eligible = true;
    for (PredId p = 0; p < program_.num_predicates(); ++p) {
      if (program_.predicate(p).arity > kEngineMaxArity) {
        engine_eligible = false;  // the engine rejects the whole program
      }
    }

    bool any_engine = false;
    Program bind_program;
    if (engine_eligible) {
      // Reproduce the vocabulary with identical predicate/constant ids.
      for (PredId p = 0; p < program_.num_predicates(); ++p) {
        bind_program.DeclarePredicate(program_.predicate_name(p),
                                      program_.predicate(p).arity);
      }
      for (ConstId c = 0; c < program_.num_constants(); ++c) {
        bind_program.InternConstant(program_.constant_name(c));
      }
    }

    for (int32_t r = 0; r < program_.num_rules(); ++r) {
      const Rule& rule = program_.rule(r);
      BindPlan& plan = plans[r];
      plan.generators = GeneratorsOf(rule);
      if (plan.generators.empty()) continue;  // pure free-var enumeration
      std::vector<char> bound(rule.num_variables, 0);
      for (int32_t b : plan.generators) {
        for (const Term& term : rule.body[b].atom.args) {
          if (term.is_variable()) bound[term.index] = 1;
        }
      }
      for (int32_t v = 0; v < rule.num_variables; ++v) {
        if (bound[v]) plan.bound_vars.push_back(v);
      }
      if (!engine_eligible ||
          static_cast<int32_t>(plan.bound_vars.size()) > kEngineMaxArity) {
        plan.legacy = true;
        continue;
      }
      // Declare $bind<r>(bound vars) :- generators.
      std::string name = "$bind" + std::to_string(r);
      while (bind_program.LookupPredicate(name) >= 0) name += "_";
      plan.bind_pred = bind_program.DeclarePredicate(
          name, static_cast<int32_t>(plan.bound_vars.size()));
      Rule bind_rule;
      bind_rule.head.predicate = plan.bind_pred;
      for (int32_t v : plan.bound_vars) {
        bind_rule.head.args.push_back(Term::Variable(v));
      }
      for (int32_t b : plan.generators) bind_rule.body.push_back(rule.body[b]);
      bind_rule.num_variables = rule.num_variables;
      bind_rule.variable_names = rule.variable_names;
      bind_program.AddRule(std::move(bind_rule));
      any_engine = true;
    }

    // One engine run computes every rule's binding relation: Δ's EDB fact
    // arenas are borrowed as FactSpans (the engine streams them straight
    // into its relations — no intermediate Database, no copy), join plans
    // are compiled and cached per rule, and the vectorized kernels
    // enumerate all matches, fanned over the pool when num_threads > 1.
    Database bindings(program_);  // placeholder; replaced when engine runs
    const Database* bound_db = nullptr;
    if (any_engine) {
      Status valid = bind_program.Validate();
      TIEBREAK_CHECK(valid.ok()) << valid.ToString();
      std::vector<FactSpan> edb(bind_program.num_predicates());
      int64_t edb_facts = 0;
      for (PredId p = 0; p < program_.num_predicates(); ++p) {
        if (!program_.IsEdb(p)) continue;
        edb[p] = database_.Facts(p);
        edb_facts += edb[p].rows;
      }
      EngineOptions engine_options;
      // The engine's tuple budget counts the loaded EDB too; charge only
      // the derived binding rows against the grounding budget.
      engine_options.max_tuples = options_.max_instances + edb_facts;
      engine_options.num_threads = num_threads_;
      // Only the $bind relations are read back; don't copy the EDB into
      // the result.
      engine_options.materialize_edb = false;
      // The grounding's context governs the engine evaluation too: its
      // checkpoints run inside the join kernels, and a trip there aborts
      // the whole grounding below.
      engine_options.context = exec_;
      Result<Database> result = EvaluateStratified(
          bind_program, Span<const FactSpan>(edb.data(), edb.size()),
          engine_options);
      if (!result.ok() && exec_ != nullptr && exec_->stopped()) {
        // A context trip (cancellation, deadline, its step/byte budgets) is
        // a real abort, never a reason to fall back to the legacy join —
        // that would restart the work the user just cancelled.
        return exec_->status();
      }
      if (result.ok()) {
        bindings = std::move(result).value();
        bound_db = &bindings;
      } else if (result.status().code() == StatusCode::kResourceExhausted) {
        // More binding rows than the instance budget allows: emission
        // could never fit either.
        return Exhausted();
      } else {
        // Any other engine rejection (e.g. an arity past its relational
        // cap that slipped through the plan check): fall back to the
        // legacy join for every engine-planned rule rather than failing a
        // grounding the backtracking path can do.
        for (BindPlan& plan : plans) {
          if (plan.bind_pred >= 0) plan.legacy = true;
        }
      }
    }

    // Pre-size the rule arenas from the known binding counts (free-var
    // enumeration can only add more; the reserve is advisory).
    if (bound_db != nullptr) {
      int64_t total_rows = 0;
      int64_t total_body = 0;
      for (int32_t r = 0; r < program_.num_rules(); ++r) {
        const BindPlan& plan = plans[r];
        if (plan.legacy || plan.generators.empty()) continue;
        const int64_t rows = bound_db->NumFacts(plan.bind_pred);
        int64_t idb_literals = 0;
        for (const Literal& literal : program_.rule(r).body) {
          if (!program_.IsEdb(literal.atom.predicate)) ++idb_literals;
        }
        total_rows += rows;
        total_body += rows * idb_literals;
      }
      graph_.ReserveRules(total_rows, total_body);
    }

    if (num_threads_ > 1) {
      // Parallel emission: one job per legacy/free-var rule, one job per
      // row shard of each engine rule's binding relation.
      std::vector<EmitJob> jobs;
      for (int32_t r = 0; r < program_.num_rules(); ++r) {
        const BindPlan& plan = plans[r];
        if (plan.legacy || plan.generators.empty()) {
          jobs.push_back(EmitJob{r, /*whole_rule=*/true, 0, 0});
          continue;
        }
        TIEBREAK_CHECK(bound_db != nullptr);
        const int64_t rows = bound_db->NumFacts(plan.bind_pred);
        if (rows == 0) continue;
        const int64_t shards =
            std::clamp<int64_t>(rows / kMinEmitShardRows, 1,
                                4 * static_cast<int64_t>(num_threads_));
        for (int64_t s = 0; s < shards; ++s) {
          jobs.push_back(EmitJob{r, /*whole_rule=*/false,
                                 rows * s / shards,
                                 rows * (s + 1) / shards});
        }
      }
      return EmitJobs(&plans, bound_db, jobs);
    }

    // Serial emission, rule by rule in rule order (bindings iterate in the
    // result database's sorted order) — the bit-identical reference path.
    for (int32_t r = 0; r < program_.num_rules(); ++r) {
      const Rule& rule = program_.rule(r);
      const BindPlan& plan = plans[r];
      if (plan.legacy) {
        Status s = GroundRuleReducedLegacy(&root_ctx_, r);
        if (!s.ok()) return s;
        continue;
      }
      if (plan.generators.empty()) {
        root_ctx_.binding.assign(rule.num_variables, -1);
        Status s = EnumerateFreeVariables(&root_ctx_, r, rule,
                                          &root_ctx_.binding);
        if (!s.ok()) return s;
        continue;
      }
      TIEBREAK_CHECK(bound_db != nullptr);
      Status s = EmitEngineRows(&root_ctx_, r, plan, *bound_db, 0,
                                bound_db->NumFacts(plan.bind_pred));
      if (!s.ok()) return s;
    }
    return Status::Ok();
  }

  // Runs `jobs` over the pool: each worker emits into a private GroundGraph
  // shard (no shared mutable state during the fan-out — the program, Δ and
  // the binding relations are read-only), then the shards merge into the
  // final graph with an atom-id remap. Returns RESOURCE_EXHAUSTED when the
  // combined work crossed the instance budget.
  Status EmitJobs(const std::vector<BindPlan>* plans, const Database* bound_db,
                  const std::vector<EmitJob>& jobs) {
    const int32_t workers = pool_->num_threads();
    std::vector<GroundGraph> shards(workers);
    std::vector<EmitContext> contexts(workers);
    std::vector<Status> statuses(workers, Status::Ok());
    for (int32_t w = 0; w < workers; ++w) {
      contexts[w].graph = &shards[w];
      contexts[w].parallel = true;
    }
    shared_work_.store(work_, std::memory_order_relaxed);
    stop_.store(false, std::memory_order_relaxed);
    pool_->ParallelFor(
        static_cast<int32_t>(jobs.size()),
        [&](int32_t task, int32_t worker) {
          EmitContext* ctx = &contexts[worker];
          if (!statuses[worker].ok()) return;  // this lane already failed
          const EmitJob& job = jobs[task];
          Status s;
          if (job.whole_rule) {
            s = GroundRuleReducedLegacy(ctx, job.rule);
          } else {
            s = EmitEngineRows(ctx, job.rule, (*plans)[job.rule], *bound_db,
                               job.row_begin, job.row_end);
          }
          FlushWork(ctx);
          if (!s.ok()) statuses[worker] = s;
        },
        exec_);
    work_ = shared_work_.load(std::memory_order_relaxed);
    for (const Status& s : statuses) {
      if (!s.ok()) return s;
    }
    // A context trip that raced past every worker's return (e.g. set by
    // the last FlushWork) still aborts the grounding here, before the
    // merge.
    if (exec_ != nullptr && exec_->stopped()) return exec_->status();
    if (work_ > options_.max_instances) return Exhausted();
    for (const GroundGraph& shard : shards) graph_.MergeFrom(shard);
    return Status::Ok();
  }

  // Per-rule batched-emission program, in body order with the head last:
  // kill checks (negated EDB) interleave with intern ops (IDB literals),
  // exactly the literal order the row-at-a-time path walks.
  struct EmitOp {
    const Atom* atom = nullptr;
    bool positive = true;  // body sign (head entry unused)
    bool head = false;     // the head intern op (always last)
    bool kill = false;     // negated-EDB membership check, no intern
    int32_t offset = 0;    // argument offset within one row's stride
  };
  struct EmitProgram {
    std::vector<EmitOp> ops;
    std::vector<PredId> op_preds;  // intern-op ordinal -> predicate
    int32_t stride = 0;            // substituted args per instance
    int32_t num_intern = 0;        // intern ops per instance (incl. head)
  };

  EmitProgram BuildEmitProgram(const Rule& rule) const {
    EmitProgram prog;
    for (const Literal& literal : rule.body) {
      const PredId pred = literal.atom.predicate;
      if (program_.IsEdb(pred)) {
        if (literal.positive) continue;  // matched against Δ already
        prog.ops.push_back(
            EmitOp{&literal.atom, false, false, /*kill=*/true, 0});
        continue;
      }
      prog.ops.push_back(
          EmitOp{&literal.atom, literal.positive, false, false, prog.stride});
      prog.stride += static_cast<int32_t>(literal.atom.args.size());
      ++prog.num_intern;
    }
    prog.ops.push_back(EmitOp{&rule.head, true, true, false, prog.stride});
    prog.stride += static_cast<int32_t>(rule.head.args.size());
    ++prog.num_intern;
    for (const EmitOp& op : prog.ops) {
      if (!op.kill) prog.op_preds.push_back(op.atom->predicate);
    }
    return prog;
  }

  // Sizes a context's block scratch for `prog` (idempotent).
  void ReserveBlockScratch(EmitContext* ctx, const EmitProgram& prog,
                           const Rule& rule) const {
    ctx->block_args.resize(static_cast<size_t>(prog.stride) * kEmitBlock);
    ctx->block_keys.resize(static_cast<size_t>(prog.num_intern) * kEmitBlock);
    if (options_.record_bindings) {
      ctx->block_bindings.resize(
          static_cast<size_t>(rule.num_variables) * kEmitBlock);
    }
  }

  // Stages the instance under ctx->binding into block slot `i`: walks the
  // emission program in literal order — a true negated-EDB atom kills the
  // instance exactly where the row-at-a-time path did (atoms substituted
  // before the kill still intern, preserving the historical atom set) —
  // substituting each surviving atom into block scratch and precomputing
  // its dedupe key. Returns whether the instance survived.
  bool StageInstance(EmitContext* ctx, const EmitProgram& prog,
                     const Rule& rule, int32_t i) {
    ConstId* args = ctx->block_args.data() +
                    static_cast<size_t>(i) * prog.stride;
    uint64_t* keys = ctx->block_keys.data() +
                     static_cast<size_t>(i) * prog.num_intern;
    const GroundAtomStore& atoms = ctx->graph->atoms();
    int32_t interned = 0;
    bool killed = false;
    for (const EmitOp& op : prog.ops) {
      if (op.kill) {
        // A true negated-EDB atom kills the instance outright (the first
        // close would delete this rule node); a false one is a satisfied
        // literal and leaves no edge.
        SubstituteInto(*op.atom, ctx->binding, &ctx->scratch_tuple);
        if (database_.ContainsRow(op.atom->predicate,
                                  ctx->scratch_tuple.data())) {
          killed = true;
          break;
        }
        continue;
      }
      ConstId* out = args + op.offset;
      int32_t k = 0;
      for (const Term& term : op.atom->args) {
        out[k++] =
            term.is_constant() ? term.index : ctx->binding[term.index];
      }
      keys[interned++] = atoms.InternKey(out, k);
    }
    ctx->block_interned[i] = interned;
    if (options_.record_bindings && !killed) {
      std::copy(ctx->binding.begin(), ctx->binding.end(),
                ctx->block_bindings.begin() +
                    static_cast<size_t>(i) * rule.num_variables);
    }
    return !killed;
  }

  // Prefetches every dedupe slot line block rows [0, n) will touch, in the
  // order the interns will consume them (the Relation::InsertBatch trick:
  // the lines are in flight while pass 2 walks up to them).
  void PrefetchBlock(const EmitContext* ctx, const EmitProgram& prog,
                     int32_t n) const {
    const GroundAtomStore& atoms = ctx->graph->atoms();
    for (int32_t i = 0; i < n; ++i) {
      const uint64_t* keys = ctx->block_keys.data() +
                             static_cast<size_t>(i) * prog.num_intern;
      for (int32_t j = 0; j < ctx->block_interned[i]; ++j) {
        atoms.PrefetchIntern(prog.op_preds[j], keys[j]);
      }
    }
  }

  // Interns and appends the staged block rows [0, n): ascending rows, body
  // before head — the exact order of the row-at-a-time path, so the serial
  // graph stays bit-identical. Killed rows (bit clear in `live`) intern
  // their pre-kill prefix but append no rule node.
  void AppendBlock(EmitContext* ctx, int32_t rule_index, const Rule& rule,
                   const EmitProgram& prog, int32_t n, uint64_t live) {
    GroundAtomStore& atoms = ctx->graph->atoms();
    for (int32_t i = 0; i < n; ++i) {
      const ConstId* args = ctx->block_args.data() +
                            static_cast<size_t>(i) * prog.stride;
      const uint64_t* keys = ctx->block_keys.data() +
                             static_cast<size_t>(i) * prog.num_intern;
      ctx->scratch_pos.clear();
      ctx->scratch_neg.clear();
      AtomId head = -1;
      int32_t o = 0;
      for (const EmitOp& op : prog.ops) {
        if (op.kill) continue;
        if (o >= ctx->block_interned[i]) break;
        const AtomId id = atoms.InternHashed(
            op.atom->predicate, args + op.offset,
            static_cast<int32_t>(op.atom->args.size()), keys[o]);
        ++o;
        if (op.head) {
          head = id;
        } else {
          (op.positive ? ctx->scratch_pos : ctx->scratch_neg).push_back(id);
        }
      }
      if (((live >> i) & 1) == 0) continue;
      TIEBREAK_CHECK_GE(head, 0);
      const ConstId* binding =
          options_.record_bindings
              ? ctx->block_bindings.data() +
                    static_cast<size_t>(i) * rule.num_variables
              : nullptr;
      ctx->graph->AppendRule(
          rule_index, head, ctx->scratch_pos.data(),
          static_cast<int32_t>(ctx->scratch_pos.size()),
          ctx->scratch_neg.data(),
          static_cast<int32_t>(ctx->scratch_neg.size()), binding,
          options_.record_bindings ? rule.num_variables : 0);
    }
  }

  // Streams rows [row_begin, row_end) of `plan.bind_pred`'s binding
  // relation into instance emission for rule `r` through the block-batched
  // pipeline: fully-bound rules stage one instance per binding row; rules
  // with residual free variables expand each row through the universe
  // odometer, staging one instance per odometer step — either way every
  // instance's atoms are hashed a block ahead of the interns that consume
  // them.
  Status EmitEngineRows(EmitContext* ctx, int32_t r, const BindPlan& plan,
                        const Database& bound_db, int64_t row_begin,
                        int64_t row_end) {
    const Rule& rule = program_.rule(r);
    const int32_t arity = static_cast<int32_t>(plan.bound_vars.size());
    const ConstId* rows =
        bound_db.FactData(plan.bind_pred) + row_begin * arity;
    const int64_t num_rows = row_end - row_begin;
    ctx->binding.assign(rule.num_variables, -1);
    ctx->scratch_free_vars.clear();
    {
      std::vector<char> bound(rule.num_variables, 0);
      for (int32_t v : plan.bound_vars) bound[v] = 1;
      for (int32_t v = 0; v < rule.num_variables; ++v) {
        if (!bound[v]) ctx->scratch_free_vars.push_back(v);
      }
    }
    const EmitProgram prog = BuildEmitProgram(rule);
    ReserveBlockScratch(ctx, prog, rule);

    if (ctx->scratch_free_vars.empty()) {
      // Fully bound: one instance per binding row, kEmitBlock rows per
      // block.
      for (int64_t block_begin = 0; block_begin < num_rows;
           block_begin += kEmitBlock) {
        const int32_t n = static_cast<int32_t>(
            std::min<int64_t>(kEmitBlock, num_rows - block_begin));
        uint64_t live = 0;
        for (int32_t i = 0; i < n; ++i) {
          Status s = Budget(ctx);
          if (!s.ok()) return s;
          const ConstId* values = rows + (block_begin + i) * arity;
          for (int32_t j = 0; j < arity; ++j) {
            ctx->binding[plan.bound_vars[j]] = values[j];
          }
          if (StageInstance(ctx, prog, rule, i)) live |= uint64_t{1} << i;
        }
        PrefetchBlock(ctx, prog, n);
        AppendBlock(ctx, r, rule, prog, n, live);
      }
      return Status::Ok();
    }

    // Residual free variables: every binding row expands over the
    // universe odometer. Odometer steps stream through the same block
    // pipeline — this is the path the Theorem 6 machine workloads live on
    // (few binding rows, |U|^k instances each).
    const std::vector<int32_t>& free_vars = ctx->scratch_free_vars;
    for (int64_t row = 0; row < num_rows; ++row) {
      Status s = Budget(ctx);
      if (!s.ok()) return s;
      const ConstId* values = rows + row * arity;
      for (int32_t j = 0; j < arity; ++j) {
        ctx->binding[plan.bound_vars[j]] = values[j];
      }
      if (universe_.empty()) continue;  // free variables cannot bind
      ctx->scratch_odo.assign(free_vars.size(), 0);
      for (int32_t var : free_vars) ctx->binding[var] = universe_.front();
      bool done = false;
      while (!done) {
        int32_t n = 0;
        uint64_t live = 0;
        while (n < kEmitBlock && !done) {
          s = Budget(ctx);
          if (!s.ok()) {
            for (int32_t var : free_vars) ctx->binding[var] = -1;
            return s;
          }
          if (StageInstance(ctx, prog, rule, n)) live |= uint64_t{1} << n;
          ++n;
          int32_t pos = static_cast<int32_t>(free_vars.size()) - 1;
          while (pos >= 0) {
            if (++ctx->scratch_odo[pos] < universe_.size()) {
              ctx->binding[free_vars[pos]] = universe_[ctx->scratch_odo[pos]];
              break;
            }
            ctx->scratch_odo[pos] = 0;
            ctx->binding[free_vars[pos]] = universe_.front();
            --pos;
          }
          if (pos < 0) done = true;
        }
        PrefetchBlock(ctx, prog, n);
        AppendBlock(ctx, r, rule, prog, n, live);
      }
      for (int32_t var : free_vars) ctx->binding[var] = -1;
    }
    return Status::Ok();
  }

  // Legacy reduced grounding of one rule: tuple-at-a-time backtracking
  // join of the generators against Δ (the seed implementation; reference
  // for the engine path and fallback past the engine's arity cap). Safe
  // from worker threads: all mutation lands in `ctx`.
  Status GroundRuleReducedLegacy(EmitContext* ctx, int32_t rule_index) {
    const Rule& rule = program_.rule(rule_index);
    const std::vector<int32_t> generators = GeneratorsOf(rule);
    ctx->binding.assign(rule.num_variables, -1);
    return MatchGenerators(ctx, rule_index, rule, generators, 0,
                           &ctx->binding);
  }

  Status MatchGenerators(EmitContext* ctx, int32_t rule_index,
                         const Rule& rule,
                         const std::vector<int32_t>& generators, size_t g,
                         Tuple* binding) {
    if (g == generators.size()) {
      return EnumerateFreeVariables(ctx, rule_index, rule, binding);
    }
    const Atom& atom = rule.body[generators[g]].atom;
    const PredId pred = atom.predicate;
    const int32_t arity = database_.arity(pred);
    const ConstId* data = database_.FactData(pred);
    const int64_t facts = database_.NumFacts(pred);
    for (int64_t row = 0; row < facts; ++row) {
      const ConstId* tuple = data + row * arity;
      Status s = Budget(ctx);
      if (!s.ok()) return s;
      // Try to unify `atom` with `tuple` under the current partial binding.
      std::vector<int32_t> bound_here;
      bool match = true;
      for (size_t i = 0; i < atom.args.size(); ++i) {
        const Term& term = atom.args[i];
        if (term.is_constant()) {
          if (term.index != tuple[i]) {
            match = false;
            break;
          }
        } else if ((*binding)[term.index] >= 0) {
          if ((*binding)[term.index] != tuple[i]) {
            match = false;
            break;
          }
        } else {
          (*binding)[term.index] = tuple[i];
          bound_here.push_back(term.index);
        }
      }
      if (match) {
        s = MatchGenerators(ctx, rule_index, rule, generators, g + 1,
                            binding);
        if (!s.ok()) return s;
      }
      for (int32_t var : bound_here) (*binding)[var] = -1;
    }
    return Status::Ok();
  }

  Status EnumerateFreeVariables(EmitContext* ctx, int32_t rule_index,
                                const Rule& rule, Tuple* binding) {
    std::vector<int32_t> free_vars;
    for (int32_t v = 0; v < rule.num_variables; ++v) {
      if ((*binding)[v] < 0) free_vars.push_back(v);
    }
    return EnumerateOver(ctx, rule_index, rule, free_vars, binding);
  }

  // Emits one instance per assignment of `free_vars` over the universe
  // (one instance outright when `free_vars` is empty). The odometer lives
  // in context scratch: the engine-backed path calls this once per binding
  // row. Leaves the free variables reset to -1.
  Status EnumerateOver(EmitContext* ctx, int32_t rule_index, const Rule& rule,
                       const std::vector<int32_t>& free_vars,
                       Tuple* binding) {
    if (!free_vars.empty() && universe_.empty()) return Status::Ok();
    ctx->scratch_odo.assign(free_vars.size(), 0);
    for (int32_t var : free_vars) (*binding)[var] = universe_.front();
    while (true) {
      Status s = Budget(ctx);
      if (!s.ok()) {
        for (int32_t var : free_vars) (*binding)[var] = -1;
        return s;
      }
      EmitReducedInstance(ctx, rule_index, rule, *binding);
      int32_t pos = static_cast<int32_t>(free_vars.size()) - 1;
      while (pos >= 0) {
        if (++ctx->scratch_odo[pos] < universe_.size()) {
          (*binding)[free_vars[pos]] = universe_[ctx->scratch_odo[pos]];
          break;
        }
        ctx->scratch_odo[pos] = 0;
        (*binding)[free_vars[pos]] = universe_.front();
        --pos;
      }
      if (pos < 0) break;
    }
    for (int32_t var : free_vars) (*binding)[var] = -1;
    return Status::Ok();
  }

  void EmitReducedInstance(EmitContext* ctx, int32_t rule_index,
                           const Rule& rule, const Tuple& binding) {
    GroundAtomStore& atoms = ctx->graph->atoms();
    ctx->scratch_pos.clear();
    ctx->scratch_neg.clear();
    for (const Literal& literal : rule.body) {
      const PredId pred = literal.atom.predicate;
      if (program_.IsEdb(pred)) {
        if (literal.positive) continue;  // matched against Δ already
        // Negated EDB literal: a true EDB atom kills the instance outright
        // (the first close would delete this rule node); a false one is a
        // satisfied literal and leaves no edge.
        SubstituteInto(literal.atom, binding, &ctx->scratch_tuple);
        if (database_.ContainsRow(pred, ctx->scratch_tuple.data())) return;
        continue;
      }
      SubstituteInto(literal.atom, binding, &ctx->scratch_tuple);
      const AtomId atom = atoms.Intern(
          pred, ctx->scratch_tuple.data(),
          static_cast<int32_t>(ctx->scratch_tuple.size()));
      (literal.positive ? ctx->scratch_pos : ctx->scratch_neg)
          .push_back(atom);
    }
    SubstituteInto(rule.head, binding, &ctx->scratch_tuple);
    const AtomId head = atoms.Intern(
        rule.head.predicate, ctx->scratch_tuple.data(),
        static_cast<int32_t>(ctx->scratch_tuple.size()));
    ctx->graph->AppendRule(
        rule_index, head, ctx->scratch_pos.data(),
        static_cast<int32_t>(ctx->scratch_pos.size()),
        ctx->scratch_neg.data(),
        static_cast<int32_t>(ctx->scratch_neg.size()), binding.data(),
        options_.record_bindings ? static_cast<int32_t>(binding.size()) : 0);
  }

  const Program& program_;
  const Database& database_;
  const GroundingOptions& options_;
  // Shared execution context (null = ungoverned); see GroundingOptions.
  ExecutionContext* const exec_;
  int32_t num_threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<ConstId> universe_;
  GroundGraph graph_;
  // Instance budget: the serial counter, plus the shared atomic + stop
  // flag shard contexts flush into during parallel emission.
  int64_t work_ = 0;
  std::atomic<int64_t> shared_work_{0};
  std::atomic<bool> stop_{false};
  // The serial path's emission context, bound to the final graph.
  EmitContext root_ctx_;
};

}  // namespace

Result<GroundingResult> Ground(const Program& program,
                               const Database& database,
                               const GroundingOptions& options) {
  TIEBREAK_CHECK_EQ(program.num_predicates(), database.num_predicates())
      << "database was built for a different program";
  GrounderImpl impl(program, database, options);
  return impl.Run();
}

}  // namespace tiebreak
