// Three-valued truth for partial models.
#ifndef TIEBREAK_GROUND_TRUTH_H_
#define TIEBREAK_GROUND_TRUTH_H_

#include <cstdint>

namespace tiebreak {

/// Truth value of a ground atom in a (partial) model.
enum class Truth : int8_t {
  kFalse = -1,
  kUndef = 0,
  kTrue = 1,
};

inline const char* TruthName(Truth t) {
  switch (t) {
    case Truth::kFalse:
      return "false";
    case Truth::kUndef:
      return "undef";
    case Truth::kTrue:
      return "true";
  }
  return "?";
}

}  // namespace tiebreak

#endif  // TIEBREAK_GROUND_TRUTH_H_
