// Three-valued truth for partial models, plus the widened atomic cell the
// parallel interpreters publish assignments through.
#ifndef TIEBREAK_GROUND_TRUTH_H_
#define TIEBREAK_GROUND_TRUTH_H_

#include <atomic>
#include <cstdint>

namespace tiebreak {

/// Truth value of a ground atom in a (partial) model.
enum class Truth : int8_t {
  kFalse = -1,
  kUndef = 0,
  kTrue = 1,
};

inline const char* TruthName(Truth t) {
  switch (t) {
    case Truth::kFalse:
      return "false";
    case Truth::kUndef:
      return "undef";
    case Truth::kTrue:
      return "true";
  }
  return "?";
}

/// One atom's truth value as a lock-free atomic cell, widened from the
/// int8_t enum to a 32-bit word (always lock-free, and wide enough that a
/// compare-exchange never shares a word with a neighbor). The parallel
/// close propagation assigns atoms with TrySet — a single CAS from kUndef,
/// so concurrent forced derivations of the same atom pick exactly one
/// winner and the close invariant "every atom is assigned once" survives
/// any interleaving. Starts at kUndef.
class AtomicTruth {
 public:
  AtomicTruth() : cell_(static_cast<int32_t>(Truth::kUndef)) {}

  /// Current value. Relaxed by default: callers sequence against writers
  /// through the ThreadPool barrier (or their own fences), not per-cell.
  Truth load(std::memory_order order = std::memory_order_relaxed) const {
    return static_cast<Truth>(static_cast<int8_t>(cell_.load(order)));
  }

  /// Attempts the one-shot kUndef -> value transition. Returns true iff
  /// this caller won the assignment; `value` must not be kUndef.
  bool TrySet(Truth value) {
    int32_t expected = static_cast<int32_t>(Truth::kUndef);
    return cell_.compare_exchange_strong(expected,
                                         static_cast<int32_t>(value),
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire);
  }

  /// Unconditional store, for single-threaded initialization phases.
  void StoreRelaxed(Truth value) {
    cell_.store(static_cast<int32_t>(value), std::memory_order_relaxed);
  }

 private:
  static_assert(std::atomic<int32_t>::is_always_lock_free,
                "AtomicTruth requires lock-free 32-bit atomics");
  std::atomic<int32_t> cell_;
};

}  // namespace tiebreak

#endif  // TIEBREAK_GROUND_TRUTH_H_
