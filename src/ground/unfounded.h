// Shared largest-unfounded-set simulation: close over the positive-edge
// subgraph of the live graph, as Section 2 defines Atoms[close(M, G+)].
// Templated over value/dead/support accessors so CloseState (plain arrays)
// and ParallelCloseState (atomic arrays, relaxed snapshot reads at a
// quiescent barrier) share one implementation. The result is the unique
// greatest unfounded set — a monotone closure, so processing order cannot
// change it — which is what lets the queue drain in prefetched 64-atom
// blocks (the PR 5 interning batch discipline) without touching semantics.
#ifndef TIEBREAK_GROUND_UNFOUNDED_H_
#define TIEBREAK_GROUND_UNFOUNDED_H_

#include <algorithm>
#include <vector>

#include "ground/ground_graph.h"
#include "ground/truth.h"
#include "util/execution_context.h"

namespace tiebreak {

namespace unfounded_internal {
/// Queue pops per prefetch block: each popped atom's consumer span start is
/// prefetched a block ahead of its scatter work.
constexpr int32_t kUnfoundedPrefetchBlock = 64;
/// Queue pops between resource checkpoints (matches close's drain cadence).
constexpr int32_t kUnfoundedPollBlock = 256;
}  // namespace unfounded_internal

/// Simulates close over the positive-edge live subgraph and returns the
/// atoms left without a value — the largest unfounded set of the state the
/// accessors describe. `value(a)` is the atom's current Truth, `rule_dead(r)`
/// whether the rule node was deleted, `support(a)` the number of live rules
/// with head a. With a non-null tripping `exec` the partial simulation is
/// abandoned and the empty set returned (it proves nothing about
/// unfoundedness); callers read the trip from the context.
template <typename ValueFn, typename RuleDeadFn, typename SupportFn>
std::vector<AtomId> SimulateUnfoundedSet(const GroundGraph& graph,
                                         ValueFn&& value,
                                         RuleDeadFn&& rule_dead,
                                         SupportFn&& support_of,
                                         ExecutionContext* exec) {
  using unfounded_internal::kUnfoundedPollBlock;
  using unfounded_internal::kUnfoundedPrefetchBlock;
  // States: 0 = open, 1 = "founded" (deleted as true), 2 = deleted as false.
  const int32_t n = graph.num_atoms();
  std::vector<char> state(n, 0);
  std::vector<char> dead(graph.num_rules());
  for (int32_t r = 0; r < graph.num_rules(); ++r) {
    dead[r] = rule_dead(r) ? 1 : 0;
  }
  std::vector<int32_t> pending(graph.num_rules(), 0);
  std::vector<int32_t> support(n);
  for (AtomId a = 0; a < n; ++a) support[a] = support_of(a);
  std::vector<AtomId> queue;

  auto mark = [&](AtomId a, char s) {
    state[a] = s;
    queue.push_back(a);
  };

  for (int32_t r = 0; r < graph.num_rules(); ++r) {
    if (dead[r]) continue;
    int32_t live_pos = 0;
    for (AtomId a : graph.PositiveBody(r)) {
      if (value(a) == Truth::kUndef) ++live_pos;
    }
    pending[r] = live_pos;
    if (live_pos == 0) {
      // Source rule node in G+: its head is founded.
      dead[r] = 1;
      const AtomId head = graph.HeadOf(r);
      if (value(head) == Truth::kUndef && state[head] == 0) mark(head, 1);
      --support[head];
    }
  }
  for (AtomId a = 0; a < n; ++a) {
    if (value(a) == Truth::kUndef && state[a] == 0 && support[a] <= 0) {
      mark(a, 2);
    }
  }

  int32_t drained = 0;
  AtomId batch[kUnfoundedPrefetchBlock];
  while (!queue.empty()) {
    // Pop a block off the queue tail and prefetch every popped atom's
    // positive-consumer span before scattering into any of them. New marks
    // append behind the popped tail and wait for the next block.
    const int32_t take = static_cast<int32_t>(
        std::min<size_t>(kUnfoundedPrefetchBlock, queue.size()));
    for (int32_t i = 0; i < take; ++i) {
      batch[i] = queue[queue.size() - take + i];
    }
    queue.resize(queue.size() - take);
    for (int32_t i = 0; i < take; ++i) {
      __builtin_prefetch(graph.PositiveConsumers(batch[i]).data());
    }
    for (int32_t i = 0; i < take; ++i) {
      // A partial simulation proves nothing about which atoms are
      // unfounded, so a trip abandons it and reports the empty set — the
      // caller's loop terminates and reads the trip from the context.
      if (exec != nullptr && (++drained & (kUnfoundedPollBlock - 1)) == 0 &&
          !exec->Checkpoint("close", kUnfoundedPollBlock).ok()) {
        return {};
      }
      const AtomId atom = batch[i];
      const bool founded = state[atom] == 1;
      for (int32_t r : graph.PositiveConsumers(atom)) {
        if (dead[r]) continue;
        if (founded) {
          if (--pending[r] > 0) continue;
          dead[r] = 1;
          const AtomId head = graph.HeadOf(r);
          if (value(head) == Truth::kUndef && state[head] == 0) {
            mark(head, 1);
          }
          --support[head];
          if (support[head] <= 0 && value(head) == Truth::kUndef &&
              state[head] == 0) {
            mark(head, 2);
          }
        } else {
          dead[r] = 1;
          const AtomId head = graph.HeadOf(r);
          --support[head];
          if (support[head] <= 0 && value(head) == Truth::kUndef &&
              state[head] == 0) {
            mark(head, 2);
          }
        }
      }
    }
  }

  std::vector<AtomId> unfounded;
  for (AtomId a = 0; a < n; ++a) {
    if (value(a) == Truth::kUndef && state[a] == 0) unfounded.push_back(a);
  }
  return unfounded;
}

}  // namespace tiebreak

#endif  // TIEBREAK_GROUND_UNFOUNDED_H_
