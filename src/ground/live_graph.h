// Materializes the *live* part of a CloseState's ground graph as a
// SignedDigraph, so the generic SCC / tie machinery (graph/) can run on it.
// Nodes are the still-undefined atoms plus the still-alive rule nodes; edges
// follow the paper's ground-graph definition restricted to live endpoints.
#ifndef TIEBREAK_GROUND_LIVE_GRAPH_H_
#define TIEBREAK_GROUND_LIVE_GRAPH_H_

#include <cstdint>
#include <vector>

#include "graph/digraph.h"
#include "ground/close.h"

namespace tiebreak {

/// The live subgraph with node <-> atom/rule mappings.
struct LiveGraph {
  SignedDigraph graph;
  /// node -> AtomId, or -1 for rule nodes.
  std::vector<int32_t> node_atom;
  /// node -> rule-instance id, or -1 for atom nodes.
  std::vector<int32_t> node_rule;
  /// AtomId -> node id, or -1 when the atom is not live.
  std::vector<int32_t> atom_node;

  int32_t num_atom_nodes = 0;
};

/// Builds the live subgraph of `state`'s ground graph. The returned graph is
/// finalized.
LiveGraph BuildLiveGraph(const CloseState& state);

}  // namespace tiebreak

#endif  // TIEBREAK_GROUND_LIVE_GRAPH_H_
