#include "ground/parallel_close.h"

#include "ground/unfounded.h"
#include "util/execution_context.h"

namespace tiebreak {

namespace {
// Worklist pops between resource checkpoints in a component drain (same
// cadence as the serial CloseState::Drain).
constexpr int32_t kClosePollBlock = 256;
}  // namespace

ParallelCloseState::ParallelCloseState(const GroundGraph& graph,
                                       ThreadPool* pool,
                                       ExecutionContext* context)
    : graph_(&graph), pool_(pool), exec_(context) {
  TIEBREAK_CHECK(graph.finalized());
  TIEBREAK_CHECK(pool != nullptr);
  schedule_ = BuildSccSchedule(graph);
  const int32_t n = graph.num_atoms();
  const int32_t m = graph.num_rules();
  value_ = std::make_unique<AtomicTruth[]>(n);
  propagated_ = std::make_unique<std::atomic<char>[]>(n);
  rule_dead_ = std::make_unique<std::atomic<char>[]>(m);
  rule_pending_ = std::make_unique<std::atomic<int32_t>[]>(m);
  atom_support_ = std::make_unique<std::atomic<int32_t>[]>(n);
  for (AtomId a = 0; a < n; ++a) {
    propagated_[a].store(0, std::memory_order_relaxed);
    atom_support_[a].store(0, std::memory_order_relaxed);
  }
  for (int32_t r = 0; r < m; ++r) {
    rule_dead_[r].store(0, std::memory_order_relaxed);
    rule_pending_[r].store(graph.BodySize(r), std::memory_order_relaxed);
    atom_support_[graph.HeadOf(r)].fetch_add(1, std::memory_order_relaxed);
  }
  scratch_.resize(pool->num_threads());
}

ParallelCloseState::ParallelCloseState(const Program& program,
                                       const Database& database,
                                       const GroundGraph& graph,
                                       ThreadPool* pool,
                                       ExecutionContext* context)
    : ParallelCloseState(graph, pool, context) {
  // M0(Δ), exactly as CloseState builds it (see close.cc). Values are
  // stored with the propagated flags clear; the first RunWaves seed scans
  // pick every assigned atom up in its own component.
  const std::vector<char> in_delta = DeltaAtomMask(database, graph.atoms());
  std::vector<char> is_edb(program.num_predicates(), 0);
  for (PredId p = 0; p < program.num_predicates(); ++p) {
    is_edb[p] = program.IsEdb(p) ? 1 : 0;
  }
  for (AtomId a = 0; a < graph.num_atoms(); ++a) {
    if (in_delta[a]) {
      value_[a].StoreRelaxed(Truth::kTrue);
    } else if (is_edb[graph.atoms().PredicateOf(a)]) {
      value_[a].StoreRelaxed(Truth::kFalse);
    } else {
      continue;
    }
    num_assigned_.fetch_add(1, std::memory_order_relaxed);
  }
  RunWaves();
}

ParallelCloseState::ParallelCloseState(const GroundGraph& graph,
                                       const std::vector<Truth>& initial,
                                       ThreadPool* pool,
                                       ExecutionContext* context)
    : ParallelCloseState(graph, pool, context) {
  TIEBREAK_CHECK_EQ(static_cast<int32_t>(initial.size()), graph.num_atoms());
  for (AtomId a = 0; a < graph.num_atoms(); ++a) {
    if (initial[a] == Truth::kUndef) continue;
    value_[a].StoreRelaxed(initial[a]);
    num_assigned_.fetch_add(1, std::memory_order_relaxed);
  }
  RunWaves();
}

void ParallelCloseState::SetAndClose(
    const std::vector<std::pair<AtomId, bool>>& assignments) {
  for (const auto& [atom, value] : assignments) {
    const bool won =
        value_[atom].TrySet(value ? Truth::kTrue : Truth::kFalse);
    TIEBREAK_CHECK(won) << "atom " << atom << " assigned twice";
    num_assigned_.fetch_add(1, std::memory_order_relaxed);
  }
  RunWaves();
}

void ParallelCloseState::RunWaves() {
  for (int32_t w = 0; w < schedule_.num_waves(); ++w) {
    if (exec_ != nullptr && exec_->stopped()) return;
    const int32_t begin = schedule_.wave_offset[w];
    const int32_t count = schedule_.wave_offset[w + 1] - begin;
    if (count == 0) continue;
    pool_->ParallelFor(
        count,
        [&](int32_t task, int32_t worker) {
          // Claiming a component is itself a checkpoint: components are the
          // scheduling grain, so a trip between claims stops a wave without
          // waiting for a drain to poll.
          if (exec_ != nullptr &&
              !exec_->Checkpoint("close_scc", 1).ok()) {
            return;
          }
          ProcessComponent(schedule_.order[begin + task], &scratch_[worker]);
        },
        exec_);
  }
}

void ParallelCloseState::ProcessComponent(int32_t comp,
                                          std::vector<AtomId>* worklist) {
  worklist->clear();
  const int32_t num_atoms = graph_->num_atoms();
  // Seed scan: schedule atoms assigned by earlier waves / initial values /
  // interpreter batches (flag exchange keeps each consumer walk unique),
  // fire live empty-body rules, and falsify unsupported undefined atoms —
  // together subsuming the serial InitialClose for this component.
  for (int32_t node : schedule_.scc.members[comp]) {
    if (node < num_atoms) {
      const AtomId a = node;
      if (value_[a].load() != Truth::kUndef) {
        if (propagated_[a].exchange(1, std::memory_order_relaxed) == 0) {
          worklist->push_back(a);
        }
      } else if (atom_support_[a].load(std::memory_order_relaxed) <= 0) {
        if (value_[a].TrySet(Truth::kFalse)) DidAssign(a, comp, worklist);
      }
    } else {
      const int32_t r = node - num_atoms;
      if (rule_dead_[r].load(std::memory_order_relaxed) == 0 &&
          rule_pending_[r].load(std::memory_order_relaxed) == 0) {
        FireRule(r, comp, worklist);
      }
    }
  }
  Drain(comp, worklist);
}

void ParallelCloseState::Drain(int32_t comp, std::vector<AtomId>* worklist) {
  int32_t drained = 0;
  while (!worklist->empty()) {
    // Same trip semantics as the serial Drain: stop between pops, keep
    // every assigned value (each was forced), abandon the rest of the
    // walk. The cleared worklist keeps the scratch reusable.
    if (exec_ != nullptr && (++drained & (kClosePollBlock - 1)) == 0 &&
        !exec_->Checkpoint("close", kClosePollBlock).ok()) {
      worklist->clear();
      return;
    }
    const AtomId atom = worklist->back();
    worklist->pop_back();
    const bool is_true = value_[atom].load() == Truth::kTrue;
    for (int32_t r : graph_->PositiveConsumers(atom)) {
      if (is_true) {
        DecPending(r, comp, worklist);
      } else {
        KillRule(r, comp, worklist);
      }
    }
    for (int32_t r : graph_->NegativeConsumers(atom)) {
      if (is_true) {
        KillRule(r, comp, worklist);
      } else {
        DecPending(r, comp, worklist);
      }
    }
  }
}

void ParallelCloseState::DidAssign(AtomId atom, int32_t comp,
                                   std::vector<AtomId>* worklist) {
  num_assigned_.fetch_add(1, std::memory_order_relaxed);
  if (ComponentOfAtom(atom) == comp) {
    // In-component: this worker owns the walk; flag-at-push keeps the seed
    // scan (which already ran, but SetAndClose replays it) from re-pushing.
    propagated_[atom].store(1, std::memory_order_relaxed);
    worklist->push_back(atom);
  }
  // Cross-component: the flag stays clear; the owning component's seed
  // scan — a strictly later wave — claims the walk.
}

void ParallelCloseState::FireRule(int32_t rule, int32_t comp,
                                  std::vector<AtomId>* worklist) {
  if (rule_dead_[rule].exchange(1, std::memory_order_acq_rel) != 0) return;
  const AtomId head = graph_->HeadOf(rule);
  if (value_[head].TrySet(Truth::kTrue)) {
    DidAssign(head, comp, worklist);
  } else {
    TIEBREAK_CHECK(value_[head].load() == Truth::kTrue)
        << "fired rule for an atom already false";
  }
  DecSupport(head, comp, worklist);
}

void ParallelCloseState::KillRule(int32_t rule, int32_t comp,
                                  std::vector<AtomId>* worklist) {
  if (rule_dead_[rule].exchange(1, std::memory_order_acq_rel) != 0) return;
  DecSupport(graph_->HeadOf(rule), comp, worklist);
}

void ParallelCloseState::DecPending(int32_t rule, int32_t comp,
                                    std::vector<AtomId>* worklist) {
  if (rule_dead_[rule].load(std::memory_order_relaxed) != 0) return;
  if (rule_pending_[rule].fetch_sub(1, std::memory_order_acq_rel) - 1 > 0) {
    return;
  }
  // Exactly one decrement observes 0 (each body arc is decremented at most
  // once, because each atom's consumer walk runs exactly once); the dead
  // exchange in FireRule resolves the race against a concurrent kill.
  FireRule(rule, comp, worklist);
}

void ParallelCloseState::DecSupport(AtomId atom, int32_t comp,
                                    std::vector<AtomId>* worklist) {
  if (atom_support_[atom].fetch_sub(1, std::memory_order_acq_rel) - 1 > 0) {
    return;
  }
  if (value_[atom].TrySet(Truth::kFalse)) DidAssign(atom, comp, worklist);
}

std::vector<Truth> ParallelCloseState::values() const {
  std::vector<Truth> out(graph_->num_atoms());
  for (AtomId a = 0; a < graph_->num_atoms(); ++a) out[a] = value_[a].load();
  return out;
}

std::vector<char> ParallelCloseState::rule_dead() const {
  std::vector<char> out(graph_->num_rules());
  for (int32_t r = 0; r < graph_->num_rules(); ++r) {
    out[r] = rule_dead_[r].load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<AtomId> ParallelCloseState::LargestUnfoundedSet() const {
  return SimulateUnfoundedSet(
      *graph_, [this](AtomId a) { return value_[a].load(); },
      [this](int32_t r) {
        return rule_dead_[r].load(std::memory_order_relaxed) != 0;
      },
      [this](AtomId a) {
        return atom_support_[a].load(std::memory_order_relaxed);
      },
      exec_);
}

}  // namespace tiebreak
