// SCC condensation and topological wave scheduling directly over GroundGraph
// CSR spans — no SignedDigraph copy. This is what lets the interpreters
// condense G(Π, Δ) (or its live subgraph) at memory-bandwidth cost and fan
// independent components out over the thread pool.
//
// Node space: atoms occupy ids [0, num_atoms), rule instance r is node
// num_atoms + r. Edges follow the paper's ground graph: positive body atom
// -> rule (positive), negated body atom -> rule (negative), rule -> head
// (positive). A GroundLiveness restricts everything to the live subgraph
// (undefined atoms, un-dead rules), exactly the graph ground/live_graph.h
// used to materialize.
//
// Equivalence contract: ComputeGroundScc reproduces ComputeScc over the
// materialized graph *exactly* — same component ids, same member order —
// because an atom's neighbors are enumerated by merging its positive and
// negative consumer spans in ascending rule order with positive first on
// ties, which is precisely the edge insertion order of live_graph.cc /
// perfect_model's FullGraph (both consumer spans are ascending by
// GroundGraph::Finalize construction). The tie-breaking interpreters depend
// on this: Lemma-1 partition sides are labeled relative to members.front(),
// so a different DFS order would silently flip default-policy tie
// orientations. interpreter_parallel_test.cc asserts the equivalence on
// randomized programs.
#ifndef TIEBREAK_GROUND_GROUND_SCC_H_
#define TIEBREAK_GROUND_GROUND_SCC_H_

#include <cstdint>
#include <vector>

#include "graph/scc.h"
#include "ground/ground_graph.h"
#include "ground/truth.h"

namespace tiebreak {

/// Restriction of the ground graph to its live subgraph. Null pointers mean
/// "everything live" (the full graph, as perfect_model uses it). The arrays
/// are borrowed and must outlive every call they are passed to.
struct GroundLiveness {
  /// Per-atom truth; an atom is live iff kUndef. Null = all atoms live.
  const Truth* atom_value = nullptr;
  /// Per-rule dead flag; a rule is live iff 0. Null = all rules live.
  const char* rule_dead = nullptr;

  bool AtomLive(AtomId a) const {
    return atom_value == nullptr || atom_value[a] == Truth::kUndef;
  }
  bool RuleAlive(int32_t r) const {
    return rule_dead == nullptr || rule_dead[r] == 0;
  }
};

/// Adjacency adapter feeding ComputeSccOver from the CSR spans; exposed so
/// the schedule builder and tie check reuse the same neighbor enumeration.
struct GroundAdjacency {
  const GroundGraph* graph;
  GroundLiveness live;

  /// Merge positions into the positive/negative consumer spans of an atom
  /// (rule nodes use neither; their single head edge is tracked by `pos`).
  struct Cursor {
    size_t pos = 0;
    size_t neg = 0;
  };

  int32_t num_nodes() const {
    return graph->num_atoms() + graph->num_rules();
  }
  bool Alive(int32_t node) const {
    return node < graph->num_atoms()
               ? live.AtomLive(node)
               : live.RuleAlive(node - graph->num_atoms());
  }
  Cursor FirstEdge(int32_t) const { return Cursor{}; }
  int32_t NextNeighbor(int32_t node, Cursor& cursor) const {
    const int32_t num_atoms = graph->num_atoms();
    if (node < num_atoms) {
      // Merged consumer walk: ascending rule id, positive before negative
      // on ties — the live_graph.cc edge insertion order (see file
      // comment). Dead rules carry no edges.
      const IdSpan pos = graph->PositiveConsumers(node);
      const IdSpan neg = graph->NegativeConsumers(node);
      while (cursor.pos < pos.size() || cursor.neg < neg.size()) {
        int32_t r;
        if (cursor.neg >= neg.size() ||
            (cursor.pos < pos.size() && pos[cursor.pos] <= neg[cursor.neg])) {
          r = pos[cursor.pos++];
        } else {
          r = neg[cursor.neg++];
        }
        if (live.RuleAlive(r)) return num_atoms + r;
      }
      return -1;
    }
    // Rule node: one head edge, present while the head atom is live.
    if (cursor.pos != 0) return -1;
    cursor.pos = 1;
    const AtomId head = graph->HeadOf(node - num_atoms);
    return live.AtomLive(head) ? head : -1;
  }
};

/// Tarjan directly over the CSR spans. Dead nodes get component -1 and
/// appear in no member list. See the file comment for the equivalence
/// guarantee against ComputeScc over the materialized live graph.
SccResult ComputeGroundScc(const GroundGraph& graph,
                           const GroundLiveness& live = {});

/// Condensation facts (bottom test, internal-edge test) over the same node
/// space, matching CondenseScc over the materialized graph.
Condensation CondenseGroundScc(const GroundGraph& graph, const SccResult& scc,
                               const GroundLiveness& live = {});

/// Topological wave schedule of the condensation: wave(c) is the longest
/// dependency-path depth of component c, so every component's dependencies
/// sit in strictly earlier waves and all components of one wave are
/// mutually edge-free — they may evaluate concurrently. Within a wave,
/// `order` lists components in descending id (the serial reference order:
/// Tarjan ids are reverse-topological, and the serial interpreters process
/// them descending).
struct SccSchedule {
  SccResult scc;
  /// component id -> wave index.
  std::vector<int32_t> wave;
  /// Component ids grouped by wave: wave w occupies
  /// order[wave_offset[w], wave_offset[w + 1]).
  std::vector<int32_t> order;
  /// num_waves() + 1 offsets into `order`.
  std::vector<int32_t> wave_offset;

  int32_t num_waves() const {
    return static_cast<int32_t>(wave_offset.size()) - 1;
  }
};

/// Condenses the (live) ground graph and levels the condensation into
/// waves. One SCC pass plus one descending-id relaxation sweep.
SccSchedule BuildSccSchedule(const GroundGraph& graph,
                             const GroundLiveness& live = {});

/// Result of the Lemma-1 tie test on one ground component (the flat-array
/// replacement for graph/tie.h CheckTie on a materialized live graph).
struct GroundTieCheck {
  bool is_tie = false;
  /// Parity side per member, aligned with scc.members[comp]: side 0 = same
  /// parity as members.front() — the same convention as TieCheckResult, so
  /// tie orientations are preserved.
  std::vector<char> side;
};

/// Lemma-1 partition test on component `comp` of a ground SCC result:
/// BFS the internal live edges from members.front() assigning sign parity,
/// then verify every internal edge. `local_scratch` must be a vector of
/// size >= num_atoms + num_rules holding -1 everywhere; it is used for the
/// node -> member-index map and restored to -1 before returning.
GroundTieCheck CheckGroundTie(const GroundGraph& graph, const SccResult& scc,
                              int32_t comp, const GroundLiveness& live,
                              std::vector<int32_t>* local_scratch);

}  // namespace tiebreak

#endif  // TIEBREAK_GROUND_GROUND_SCC_H_
