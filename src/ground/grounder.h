// Construction of the ground graph G(Π, Δ).
//
// Two modes:
//
//  * faithful (reduce_edb = false): the paper's definition verbatim — every
//    rule with k variables is instantiated with every k-tuple over the
//    universe U (constants of Π and Δ), and with include_all_atoms the
//    predicate-node set VP is the full set of ground atoms over U. Feasible
//    only for small inputs; used as the reference in equivalence tests.
//
//  * reduced (default): performs the EDB part of the very first close(M, G)
//    during grounding. Rule instances with a false positive EDB literal or
//    a true negated EDB literal are never created (close would delete them
//    immediately), satisfied EDB literals are dropped from bodies (close
//    would delete those resolved atoms), and EDB atoms are not interned as
//    nodes. The result is equivalent to the faithful graph *after* the
//    initial close — tested exhaustively in ground_test.cc — and it is what
//    makes programs like the Theorem 6 machine-simulation (whose rules
//    carry long succ-chain variable lists) groundable at all.
//
// Binding enumeration in reduced mode is engine-backed by default: the
// positive EDB literals of each rule become one conjunctive "binding rule"
// over a derived program, the whole batch is evaluated by the relational
// engine (columnar relations, compiled/cached join plans, vectorized join
// kernels — see engine/evaluation.h) through the borrowed-EDB entry point
// (Δ's flat fact arenas are handed to the engine as FactSpans, no
// intermediate Database copy), and the grounder then streams the
// materialized binding rows out of the columnar result Database, emitting
// rule instances straight into the CSR graph arenas with zero per-instance
// heap allocation. Emission is block-batched: the substituted atoms of a
// block of binding rows are hashed ahead and their dedupe slot lines
// prefetched before any intern touches them (the Relation::InsertBatch
// trick), and with num_threads > 1 per-rule emission jobs (row-sharded for
// large binding relations) fan out over a thread pool into per-worker
// graph shards that merge with an atom-id remap. The seed's
// tuple-at-a-time backtracking join survives as the legacy path
// (engine_bindings = false) — it is the reference implementation the
// CSR/engine agreement tests compare against, and the automatic fallback
// for rules whose bound-variable count exceeds the engine's arity cap.
#ifndef TIEBREAK_GROUND_GROUNDER_H_
#define TIEBREAK_GROUND_GROUNDER_H_

#include <cstdint>
#include <vector>

#include "ground/ground_graph.h"
#include "lang/database.h"
#include "lang/program.h"
#include "util/status.h"

namespace tiebreak {

// Forward-declared; see util/execution_context.h.
class ExecutionContext;

/// Grounding knobs.
struct GroundingOptions {
  /// Apply the EDB reduction (see file comment). Default on.
  bool reduce_edb = true;
  /// Faithful mode only: also intern every ground atom over U for every
  /// predicate, exactly matching the paper's VP.
  bool include_all_atoms = false;
  /// Reduced mode: enumerate generator bindings through the relational
  /// engine (default). false = the seed's backtracking join, kept as the
  /// agreement-test reference.
  bool engine_bindings = true;
  /// Worker threads for reduced-mode grounding: the engine evaluation of
  /// the binding program and instance emission both fan out (the engine
  /// constructs its own pool for the evaluation phase; emission uses the
  /// grounder's — the phases are sequential, so at most one set of
  /// workers is running). Emission parallelizes as per-rule jobs (large
  /// binding relations additionally split into row shards); each worker
  /// emits into a private GroundGraph shard with no synchronization, and
  /// the shards merge into the final CSR arenas with an atom-id remap
  /// (GroundGraph::MergeFrom). 1 = the serial reference (the arenas it
  /// produces are bit-identical to pre-parallel grounding; parallel runs
  /// agree on atom sets and rule-instance multisets but may order them
  /// differently), 0 = hardware concurrency. Faithful mode ignores this
  /// and always grounds serially.
  int32_t num_threads = 1;
  /// Record each instance's variable binding in the graph
  /// (GroundGraph::BindingOf). Off by default: no interpreter reads
  /// bindings, and on million-instance graphs the binding arena costs more
  /// memory traffic than the rest of the rule arenas combined. Debug tools
  /// that want `rule_index + binding -> instance` provenance turn it on.
  bool record_bindings = false;
  /// Abort with RESOURCE_EXHAUSTED beyond this many rule instances /
  /// explored bindings (guards |U|^k blowups).
  int64_t max_instances = 10'000'000;
  /// Resource governance for this grounding (not owned; null = none).
  /// Checkpoints fire per emission block (serial) / per budget-flush block
  /// (parallel shards), and the context threads through to the engine
  /// evaluation of the binding program. On a trip, Ground returns the
  /// context's Status (kResourceExhausted / kDeadlineExceeded /
  /// kCancelled); parallel shards abandon cleanly at the merge barrier.
  /// Independent of max_instances — both limits apply.
  ExecutionContext* context = nullptr;
};

/// A finalized ground graph plus the universe it was built over.
struct GroundingResult {
  GroundGraph graph;
  std::vector<ConstId> universe;  // ascending ConstIds of Π and Δ
};

/// Computes U: all constants appearing in `program`'s rules or `database`.
std::vector<ConstId> ComputeUniverse(const Program& program,
                                     const Database& database);

/// Builds G(Π, Δ). The program must Validate(). IDB atoms of Δ are always
/// interned (they carry initial truth); EDB atoms become nodes only in
/// faithful mode.
Result<GroundingResult> Ground(const Program& program,
                               const Database& database,
                               const GroundingOptions& options = {});

}  // namespace tiebreak

#endif  // TIEBREAK_GROUND_GROUNDER_H_
