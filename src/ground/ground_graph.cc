#include "ground/ground_graph.h"

namespace tiebreak {

uint64_t GroundAtomStore::HashKey(PredId predicate, const Tuple& tuple) {
  // FNV-1a over the predicate id and the constants.
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t x) {
    h ^= x;
    h *= 1099511628211ULL;
  };
  mix(static_cast<uint64_t>(predicate));
  for (ConstId c : tuple) mix(static_cast<uint64_t>(c) + 0x9E3779B9ULL);
  return h;
}

AtomId GroundAtomStore::Intern(PredId predicate, const Tuple& tuple) {
  const uint64_t hash = HashKey(predicate, tuple);
  std::vector<AtomId>& bucket = index_[hash];
  for (AtomId id : bucket) {
    if (atoms_[id].first == predicate && atoms_[id].second == tuple) {
      return id;
    }
  }
  const AtomId id = size();
  atoms_.emplace_back(predicate, tuple);
  bucket.push_back(id);
  return id;
}

AtomId GroundAtomStore::Lookup(PredId predicate, const Tuple& tuple) const {
  const uint64_t hash = HashKey(predicate, tuple);
  auto it = index_.find(hash);
  if (it == index_.end()) return -1;
  for (AtomId id : it->second) {
    if (atoms_[id].first == predicate && atoms_[id].second == tuple) {
      return id;
    }
  }
  return -1;
}

void GroundGraph::Finalize() {
  TIEBREAK_CHECK(!finalized_);
  positive_consumers_.assign(num_atoms(), {});
  negative_consumers_.assign(num_atoms(), {});
  supporters_.assign(num_atoms(), {});
  for (int32_t r = 0; r < num_rules(); ++r) {
    const RuleInstance& inst = rules_[r];
    TIEBREAK_CHECK_GE(inst.head, 0);
    TIEBREAK_CHECK_LT(inst.head, num_atoms());
    supporters_[inst.head].push_back(r);
    for (AtomId a : inst.positive_body) positive_consumers_[a].push_back(r);
    for (AtomId a : inst.negative_body) negative_consumers_[a].push_back(r);
  }
  finalized_ = true;
}

int64_t GroundGraph::num_edges() const {
  int64_t edges = num_rules();  // one head edge per rule node
  for (const RuleInstance& inst : rules_) {
    edges += static_cast<int64_t>(inst.positive_body.size()) +
             static_cast<int64_t>(inst.negative_body.size());
  }
  return edges;
}

}  // namespace tiebreak
