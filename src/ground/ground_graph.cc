#include "ground/ground_graph.h"

#include "util/thread_pool.h"

namespace tiebreak {

uint64_t GroundAtomStore::KeyOf(const ConstId* args, int32_t arity) {
  // Arity ≤ 2 packs exactly (ConstIds are nonnegative 31-bit values).
  // Cross-arity key collisions inside one predicate's table are handled by
  // the arity compare in AtomEquals / the find loops.
  if (arity == 0) return 0x9E3779B97F4A7C15ULL;
  if (arity == 1) return static_cast<uint64_t>(args[0]);
  if (arity == 2) {
    return static_cast<uint64_t>(args[0]) << 31 |
           static_cast<uint64_t>(args[1]);
  }
  // FNV-1a over the constants.
  uint64_t h = 1469598103934665603ULL;
  for (int32_t i = 0; i < arity; ++i) {
    h ^= static_cast<uint64_t>(args[i]) + 0x9E3779B9ULL;
    h *= 1099511628211ULL;
  }
  return h;
}

void GroundAtomStore::GrowTable(PredTable* table) const {
  const size_t new_capacity =
      table->slots.empty() ? 16 : table->slots.size() * 2;
  std::vector<Slot> old = std::move(table->slots);
  table->slots.assign(new_capacity, Slot{});
  const size_t mask = new_capacity - 1;
  for (const Slot& slot : old) {
    if (slot.atom < 0) continue;
    size_t at = MixSlot(slot.key) & mask;
    while (table->slots[at].atom >= 0) at = (at + 1) & mask;
    table->slots[at] = slot;
  }
}

AtomId GroundAtomStore::Intern(PredId predicate, const ConstId* args,
                               int32_t arity) {
  return InternHashed(predicate, args, arity, KeyOf(args, arity));
}

AtomId GroundAtomStore::InternHashed(PredId predicate, const ConstId* args,
                                     int32_t arity, uint64_t key) {
  TIEBREAK_CHECK_GE(predicate, 0);
  if (predicate >= static_cast<PredId>(tables_.size())) {
    tables_.resize(predicate + 1);
  }
  PredTable& table = tables_[predicate];
  if (table.used * 2 >= static_cast<int32_t>(table.slots.size())) {
    GrowTable(&table);
  }
  const bool exact = ExactKeys(arity);
  const size_t mask = table.slots.size() - 1;
  size_t at = MixSlot(key) & mask;
  while (true) {
    Slot& slot = table.slots[at];
    if (slot.atom < 0) {
      const AtomId id = size();
      pred_.push_back(predicate);
      args_.insert(args_.end(), args, args + arity);
      offset_.push_back(static_cast<int64_t>(args_.size()));
      slot.key = key;
      slot.atom = id;
      ++table.used;
      return id;
    }
    if (slot.key == key &&
        (exact ? ArityOf(slot.atom) == arity
               : AtomEquals(slot.atom, args, arity))) {
      return slot.atom;
    }
    at = (at + 1) & mask;
  }
}

AtomId GroundAtomStore::Lookup(PredId predicate, const ConstId* args,
                               int32_t arity) const {
  TIEBREAK_CHECK_GE(predicate, 0);
  if (predicate >= static_cast<PredId>(tables_.size())) return -1;
  const PredTable& table = tables_[predicate];
  if (table.slots.empty()) return -1;
  const uint64_t key = KeyOf(args, arity);
  const bool exact = ExactKeys(arity);
  const size_t mask = table.slots.size() - 1;
  size_t at = MixSlot(key) & mask;
  while (true) {
    const Slot& slot = table.slots[at];
    if (slot.atom < 0) return -1;
    if (slot.key == key &&
        (exact ? ArityOf(slot.atom) == arity
               : AtomEquals(slot.atom, args, arity))) {
      return slot.atom;
    }
    at = (at + 1) & mask;
  }
}

void GroundAtomStore::BuildPredicateIndex() {
  const int32_t atoms = size();
  PredId max_pred = -1;
  for (const PredId p : pred_) max_pred = p > max_pred ? p : max_pred;
  by_pred_offset_.assign(static_cast<size_t>(max_pred + 1) + 1, 0);
  for (const PredId p : pred_) ++by_pred_offset_[p + 1];
  for (size_t p = 1; p < by_pred_offset_.size(); ++p) {
    by_pred_offset_[p] += by_pred_offset_[p - 1];
  }
  by_pred_atoms_.resize(static_cast<size_t>(atoms));
  // Scatter with the offsets as cursors, then shift back (the same
  // no-temporary trick as GroundGraph::Finalize).
  for (AtomId a = 0; a < atoms; ++a) {
    by_pred_atoms_[by_pred_offset_[pred_[a]]++] = a;
  }
  for (size_t p = by_pred_offset_.size() - 1; p > 0; --p) {
    by_pred_offset_[p] = by_pred_offset_[p - 1];
  }
  by_pred_offset_[0] = 0;
  by_pred_atom_count_ = atoms;
}

void GroundAtomStore::Reserve(int64_t num_atoms, int64_t num_args) {
  pred_.reserve(static_cast<size_t>(num_atoms));
  offset_.reserve(static_cast<size_t>(num_atoms) + 1);
  args_.reserve(static_cast<size_t>(num_args));
}

Result<GroundAtomStore> GroundAtomStore::FromArenas(Span<PredId> preds,
                                                    Span<int64_t> offsets,
                                                    Span<ConstId> args,
                                                    int32_t num_predicates,
                                                    int32_t num_constants) {
  const size_t atoms = preds.size();
  if (atoms > static_cast<size_t>(INT32_MAX)) {
    return Status::DataLoss("atom count overflows int32");
  }
  if (offsets.size() != atoms + 1) {
    return Status::DataLoss("atom offset array has " +
                            std::to_string(offsets.size()) +
                            " entries, expected " + std::to_string(atoms + 1));
  }
  if (offsets[0] != 0) {
    return Status::DataLoss("atom offsets do not start at 0");
  }
  for (size_t a = 0; a < atoms; ++a) {
    if (offsets[a + 1] < offsets[a]) {
      return Status::DataLoss("atom offsets not monotone at atom " +
                              std::to_string(a));
    }
  }
  if (offsets[atoms] != static_cast<int64_t>(args.size())) {
    return Status::DataLoss("atom offsets end at " +
                            std::to_string(offsets[atoms]) +
                            ", argument arena holds " +
                            std::to_string(args.size()));
  }
  for (size_t a = 0; a < atoms; ++a) {
    if (preds[a] < 0 || preds[a] >= num_predicates) {
      return Status::DataLoss("atom " + std::to_string(a) + ": predicate " +
                              std::to_string(preds[a]) + " outside [0, " +
                              std::to_string(num_predicates) + ")");
    }
  }
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] < 0 || args[i] >= num_constants) {
      return Status::DataLoss("atom argument " + std::to_string(i) + ": " +
                              std::to_string(args[i]) + " outside [0, " +
                              std::to_string(num_constants) + ")");
    }
  }
  // Re-intern in id order: rebuilds the arenas and dedupe tables exactly
  // as the original interning sequence did (ids are assigned densely in
  // call order). An intern that returns an id below its position names an
  // atom the file stored twice — corrupt, since interning dedupes.
  GroundAtomStore store;
  store.Reserve(static_cast<int64_t>(atoms),
                static_cast<int64_t>(args.size()));
  for (size_t a = 0; a < atoms; ++a) {
    const int32_t arity = static_cast<int32_t>(offsets[a + 1] - offsets[a]);
    const AtomId id =
        store.Intern(preds[a], args.data() + offsets[a], arity);
    if (id != static_cast<AtomId>(a)) {
      return Status::DataLoss("duplicate interned atom at id " +
                              std::to_string(a));
    }
  }
  return store;
}

Result<GroundGraph> GroundGraph::FromArenas(GroundAtomStore atoms,
                                            Span<int32_t> rule_indices,
                                            Span<AtomId> heads,
                                            Span<int64_t> pos_ends,
                                            Span<int64_t> body_offsets,
                                            Span<AtomId> body,
                                            Span<int64_t> binding_offsets,
                                            Span<ConstId> bindings,
                                            int32_t num_constants,
                                            int32_t num_program_rules) {
  const size_t rules = rule_indices.size();
  if (rules > static_cast<size_t>(INT32_MAX)) {
    return Status::DataLoss("rule count overflows int32");
  }
  if (heads.size() != rules || pos_ends.size() != rules) {
    return Status::DataLoss("per-rule arrays disagree on rule count");
  }
  if (body_offsets.size() != rules + 1 ||
      binding_offsets.size() != rules + 1) {
    return Status::DataLoss("rule offset arrays disagree on rule count");
  }
  if (body_offsets[0] != 0 || binding_offsets[0] != 0) {
    return Status::DataLoss("rule offsets do not start at 0");
  }
  if (body_offsets[rules] != static_cast<int64_t>(body.size())) {
    return Status::DataLoss("body offsets end at " +
                            std::to_string(body_offsets[rules]) +
                            ", body arena holds " +
                            std::to_string(body.size()));
  }
  if (binding_offsets[rules] != static_cast<int64_t>(bindings.size())) {
    return Status::DataLoss("binding offsets end at " +
                            std::to_string(binding_offsets[rules]) +
                            ", binding arena holds " +
                            std::to_string(bindings.size()));
  }
  const int32_t num_atoms = atoms.size();
  for (size_t r = 0; r < rules; ++r) {
    const std::string where = "rule instance " + std::to_string(r);
    if (body_offsets[r + 1] < body_offsets[r] ||
        binding_offsets[r + 1] < binding_offsets[r]) {
      return Status::DataLoss(where + ": offsets not monotone");
    }
    if (pos_ends[r] < body_offsets[r] || pos_ends[r] > body_offsets[r + 1]) {
      return Status::DataLoss(where + ": positive split " +
                              std::to_string(pos_ends[r]) +
                              " outside body range");
    }
    if (rule_indices[r] < 0 ||
        (num_program_rules >= 0 && rule_indices[r] >= num_program_rules)) {
      return Status::DataLoss(where + ": program rule index " +
                              std::to_string(rule_indices[r]) +
                              " out of range");
    }
    if (heads[r] < 0 || heads[r] >= num_atoms) {
      return Status::DataLoss(where + ": head atom " +
                              std::to_string(heads[r]) + " outside [0, " +
                              std::to_string(num_atoms) + ")");
    }
  }
  for (size_t i = 0; i < body.size(); ++i) {
    if (body[i] < 0 || body[i] >= num_atoms) {
      return Status::DataLoss("body occurrence " + std::to_string(i) +
                              ": atom " + std::to_string(body[i]) +
                              " outside [0, " + std::to_string(num_atoms) +
                              ")");
    }
  }
  for (size_t i = 0; i < bindings.size(); ++i) {
    if (bindings[i] < 0 || bindings[i] >= num_constants) {
      return Status::DataLoss("binding entry " + std::to_string(i) + ": " +
                              std::to_string(bindings[i]) + " outside [0, " +
                              std::to_string(num_constants) + ")");
    }
  }
  GroundGraph graph;
  graph.atoms_ = std::move(atoms);
  graph.rule_index_.assign(rule_indices.begin(), rule_indices.end());
  graph.head_.assign(heads.begin(), heads.end());
  graph.pos_end_.assign(pos_ends.begin(), pos_ends.end());
  graph.body_offset_.assign(body_offsets.begin(), body_offsets.end());
  graph.body_.assign(body.begin(), body.end());
  graph.binding_offset_.assign(binding_offsets.begin(),
                               binding_offsets.end());
  graph.binding_.assign(bindings.begin(), bindings.end());
  graph.Finalize();
  return graph;
}

void GroundGraph::AppendRule(int32_t rule_index, AtomId head,
                             const AtomId* pos, int32_t num_pos,
                             const AtomId* neg, int32_t num_neg,
                             const ConstId* binding, int32_t num_binding) {
  TIEBREAK_CHECK(!finalized_);
  rule_index_.push_back(rule_index);
  head_.push_back(head);
  if (num_pos > 0) body_.insert(body_.end(), pos, pos + num_pos);
  pos_end_.push_back(static_cast<int64_t>(body_.size()));
  if (num_neg > 0) body_.insert(body_.end(), neg, neg + num_neg);
  body_offset_.push_back(static_cast<int64_t>(body_.size()));
  if (num_binding > 0) {
    binding_.insert(binding_.end(), binding, binding + num_binding);
  }
  binding_offset_.push_back(static_cast<int64_t>(binding_.size()));
}

void GroundGraph::ReserveRules(int64_t rules, int64_t body_atoms) {
  rule_index_.reserve(static_cast<size_t>(rules));
  head_.reserve(static_cast<size_t>(rules));
  pos_end_.reserve(static_cast<size_t>(rules));
  body_offset_.reserve(static_cast<size_t>(rules) + 1);
  binding_offset_.reserve(static_cast<size_t>(rules) + 1);
  body_.reserve(static_cast<size_t>(body_atoms));
}

void GroundGraph::MergeFrom(const GroundGraph& shard) {
  TIEBREAK_CHECK(!finalized_);
  TIEBREAK_CHECK(!shard.finalized_);
  const int32_t shard_atoms = shard.atoms_.size();
  const int32_t shard_rules = shard.num_rules();
  // Remap pass: intern every shard atom into the global store. Atoms the
  // shards duplicated (or that were pre-seeded from Δ) collapse to one id.
  atoms_.Reserve(atoms_.size() + shard_atoms,
                 atoms_.num_args() + shard.atoms_.num_args());
  std::vector<AtomId> remap(static_cast<size_t>(shard_atoms));
  for (AtomId a = 0; a < shard_atoms; ++a) {
    const IdSpan args = shard.atoms_.ArgsOf(a);
    remap[a] = atoms_.Intern(shard.atoms_.PredicateOf(a), args.data(),
                             static_cast<int32_t>(args.size()));
  }
  // Append the rule arenas wholesale: atom ids go through the remap,
  // offsets shift by this graph's current arena sizes, bindings (global
  // ConstIds already) copy verbatim.
  const int64_t body_base = static_cast<int64_t>(body_.size());
  const int64_t binding_base = static_cast<int64_t>(binding_.size());
  rule_index_.insert(rule_index_.end(), shard.rule_index_.begin(),
                     shard.rule_index_.end());
  head_.reserve(head_.size() + shard.head_.size());
  for (const AtomId head : shard.head_) head_.push_back(remap[head]);
  body_.reserve(body_.size() + shard.body_.size());
  for (const AtomId atom : shard.body_) body_.push_back(remap[atom]);
  pos_end_.reserve(pos_end_.size() + shard.pos_end_.size());
  for (const int64_t end : shard.pos_end_) pos_end_.push_back(body_base + end);
  body_offset_.reserve(body_offset_.size() + shard_rules);
  binding_offset_.reserve(binding_offset_.size() + shard_rules);
  for (int32_t r = 1; r <= shard_rules; ++r) {
    body_offset_.push_back(body_base + shard.body_offset_[r]);
    binding_offset_.push_back(binding_base + shard.binding_offset_[r]);
  }
  binding_.insert(binding_.end(), shard.binding_.begin(),
                  shard.binding_.end());
}

void GroundGraph::Finalize(ThreadPool* pool) {
  TIEBREAK_CHECK(!finalized_);
  const int32_t atoms = num_atoms();
  const int32_t rules = num_rules();
  for (int32_t r = 0; r < rules; ++r) {
    TIEBREAK_CHECK_GE(head_[r], 0);
    TIEBREAK_CHECK_LT(head_[r], atoms);
  }
  // Each inverse index builds independently (count per-atom degrees,
  // prefix-sum into offsets, scatter rule ids) and touches only its own
  // offset/adjacency arrays, so the three builds run as one task each on
  // the pool when one is supplied; without a pool the serial path below
  // fuses all three into one counting pass and one scatter pass — the
  // split builds re-read the rule arenas and measure 2-5% slower on the
  // million-node serial groundings, which is why the fused copy is kept
  // despite restating the same logic. Both orders produce identical
  // indexes (tested across thread counts). The scatter
  // reuses the offset arrays themselves as cursors (each entry advances to
  // the next atom's start), then shifts them back — no temporary cursor
  // arrays the size of the atom set. Rule ids land ascending per atom
  // because rules are visited in order.
  auto build = [&](std::vector<int64_t>* offsets,
                   std::vector<int32_t>* adjacency, auto&& visit) {
    offsets->assign(atoms + 1, 0);
    for (int32_t r = 0; r < rules; ++r) {
      visit(r, [&](AtomId a) { ++(*offsets)[a + 1]; });
    }
    for (int32_t a = 0; a < atoms; ++a) {
      (*offsets)[a + 1] += (*offsets)[a];
    }
    adjacency->resize(static_cast<size_t>((*offsets)[atoms]));
    for (int32_t r = 0; r < rules; ++r) {
      visit(r, [&](AtomId a) { (*adjacency)[(*offsets)[a]++] = r; });
    }
    for (int32_t a = atoms; a > 0; --a) {
      (*offsets)[a] = (*offsets)[a - 1];
    }
    (*offsets)[0] = 0;
  };
  auto build_one = [&](int32_t which) {
    switch (which) {
      case 0:
        build(&sup_offset_, &supporters_,
              [&](int32_t r, auto&& emit) { emit(head_[r]); });
        break;
      case 1:
        build(&pos_offset_, &pos_consumers_, [&](int32_t r, auto&& emit) {
          for (int64_t i = body_offset_[r]; i < pos_end_[r]; ++i) {
            emit(body_[i]);
          }
        });
        break;
      default:
        build(&neg_offset_, &neg_consumers_, [&](int32_t r, auto&& emit) {
          for (int64_t i = pos_end_[r]; i < body_offset_[r + 1]; ++i) {
            emit(body_[i]);
          }
        });
        break;
    }
  };
  if (pool != nullptr && pool->num_threads() > 1) {
    pool->ParallelFor(3, [&](int32_t task, int32_t) { build_one(task); });
  } else {
    sup_offset_.assign(atoms + 1, 0);
    pos_offset_.assign(atoms + 1, 0);
    neg_offset_.assign(atoms + 1, 0);
    for (int32_t r = 0; r < rules; ++r) {
      ++sup_offset_[head_[r] + 1];
      for (int64_t i = body_offset_[r]; i < pos_end_[r]; ++i) {
        ++pos_offset_[body_[i] + 1];
      }
      for (int64_t i = pos_end_[r]; i < body_offset_[r + 1]; ++i) {
        ++neg_offset_[body_[i] + 1];
      }
    }
    for (int32_t a = 0; a < atoms; ++a) {
      sup_offset_[a + 1] += sup_offset_[a];
      pos_offset_[a + 1] += pos_offset_[a];
      neg_offset_[a + 1] += neg_offset_[a];
    }
    supporters_.resize(static_cast<size_t>(sup_offset_[atoms]));
    pos_consumers_.resize(static_cast<size_t>(pos_offset_[atoms]));
    neg_consumers_.resize(static_cast<size_t>(neg_offset_[atoms]));
    for (int32_t r = 0; r < rules; ++r) {
      supporters_[sup_offset_[head_[r]]++] = r;
      for (int64_t i = body_offset_[r]; i < pos_end_[r]; ++i) {
        pos_consumers_[pos_offset_[body_[i]]++] = r;
      }
      for (int64_t i = pos_end_[r]; i < body_offset_[r + 1]; ++i) {
        neg_consumers_[neg_offset_[body_[i]]++] = r;
      }
    }
    for (int32_t a = atoms; a > 0; --a) {
      sup_offset_[a] = sup_offset_[a - 1];
      pos_offset_[a] = pos_offset_[a - 1];
      neg_offset_[a] = neg_offset_[a - 1];
    }
    sup_offset_[0] = 0;
    pos_offset_[0] = 0;
    neg_offset_[0] = 0;
  }
  atoms_.BuildPredicateIndex();
  finalized_ = true;
}

std::vector<char> DeltaAtomMask(const Database& database,
                                const GroundAtomStore& atoms) {
  std::vector<char> mask(atoms.size(), 0);
  for (PredId p = 0; p < database.num_predicates(); ++p) {
    const int32_t arity = database.arity(p);
    const int64_t facts = database.NumFacts(p);
    const ConstId* data = database.FactData(p);
    for (int64_t row = 0; row < facts; ++row) {
      const AtomId a = atoms.Lookup(p, data + row * arity, arity);
      if (a >= 0) mask[a] = 1;
    }
  }
  return mask;
}

}  // namespace tiebreak
