// Wave-parallel close(M, G): the SCC condensation of the ground graph is
// leveled into topological waves (ground/ground_scc.h) and each wave's
// components drain on the thread pool concurrently. Close is confluent
// ("these are uniquely determined, independent of the order"), so any
// schedule reaches the same fixpoint as ground/close.h — the parallel state
// exists purely to split the worklist across components safely.
//
// Scheme:
//  * One component is always drained by one worker (components are the task
//    unit), so intra-component propagation needs no synchronization beyond
//    the atomics themselves.
//  * Every cross-component edge points to a strictly later wave, so effects
//    an assignment has on other components — rule kills, pending and
//    support decrements, head assignments — are applied *eagerly* with
//    atomic RMWs (fetch_sub for counters, exchange for rule death, CAS for
//    atom values); the touched component is either in a later wave (its
//    worker starts after the barrier and sees everything) or is being
//    drained by exactly the current worker.
//  * The *consumer walk* of an assigned atom runs only inside the atom's
//    own component: a per-atom `propagated` flag is set at push time by the
//    in-component assigner, while cross-component assigners leave it clear
//    and the owning component's seed scan picks the atom up (flag exchange)
//    when its wave arrives. The seed scan also fires live empty-body rules
//    and falsifies unsupported undefined atoms, subsuming the serial
//    InitialClose.
//  * SetAndClose applies a batch of assignments (CAS, flag clear) and
//    replays the wave schedule; already-propagated atoms are skipped by
//    their flags, so each pass costs O(schedule) plus the new propagation.
//
// Resource governance mirrors CloseState, with one extra site: a
// "close_scc" checkpoint when a worker claims a component, plus the usual
// "close" checkpoint per 256 worklist pops inside a drain. On a trip the
// local worklist is abandoned (assigned values stay sound — each was
// forced), later waves are not dispatched, and callers read the trip from
// the context.
//
// This type is the num_threads > 1 engine behind the interpreters in
// src/core/; num_threads == 1 callers keep using CloseState, which remains
// the bit-identical serial reference.
#ifndef TIEBREAK_GROUND_PARALLEL_CLOSE_H_
#define TIEBREAK_GROUND_PARALLEL_CLOSE_H_

#include <atomic>
#include <memory>
#include <utility>
#include <vector>

#include "ground/ground_graph.h"
#include "ground/ground_scc.h"
#include "ground/truth.h"
#include "lang/database.h"
#include "lang/program.h"
#include "util/thread_pool.h"

namespace tiebreak {

class ExecutionContext;

/// Persistent wave-parallel close(M, G) state over one ground graph. The
/// pool and context are borrowed and must outlive the state; all reads
/// (Value, values, LargestUnfoundedSet, ...) assume quiescence — call them
/// between SetAndClose calls, never concurrently with one.
class ParallelCloseState {
 public:
  /// M0(Δ) start, mirroring CloseState: Δ atoms true, EDB atoms outside Δ
  /// false, IDB atoms undefined; then closes across the pool.
  ParallelCloseState(const Program& program, const Database& database,
                     const GroundGraph& graph, ThreadPool* pool,
                     ExecutionContext* context = nullptr);

  /// Explicit initial assignment (kUndef entries stay open), then closes.
  ParallelCloseState(const GroundGraph& graph,
                     const std::vector<Truth>& initial, ThreadPool* pool,
                     ExecutionContext* context = nullptr);

  /// Assigns a batch (all atoms must be live) and propagates to fixpoint by
  /// replaying the wave schedule.
  void SetAndClose(const std::vector<std::pair<AtomId, bool>>& assignments);

  Truth Value(AtomId atom) const {
    TIEBREAK_CHECK_GE(atom, 0);
    TIEBREAK_CHECK_LT(atom, graph_->num_atoms());
    return value_[atom].load();
  }
  bool AtomLive(AtomId atom) const { return Value(atom) == Truth::kUndef; }
  bool RuleLive(int32_t rule) const {
    return rule_dead_[rule].load(std::memory_order_relaxed) == 0;
  }

  int32_t num_live_atoms() const {
    return graph_->num_atoms() -
           num_assigned_.load(std::memory_order_relaxed);
  }
  bool IsTotal() const { return num_live_atoms() == 0; }

  /// Snapshot of the full assignment (by AtomId).
  std::vector<Truth> values() const;
  /// Snapshot of the per-rule deleted flags (for GroundLiveness).
  std::vector<char> rule_dead() const;

  /// The largest unfounded set of the current (quiescent) state; same
  /// contract as CloseState::LargestUnfoundedSet, including the empty
  /// result on a context trip.
  std::vector<AtomId> LargestUnfoundedSet() const;

  const GroundGraph& graph() const { return *graph_; }
  /// The wave schedule driving the drains (components of the *full* ground
  /// graph; liveness never splits a component, so it stays valid for the
  /// lifetime of the state).
  const SccSchedule& schedule() const { return schedule_; }

 private:
  ParallelCloseState(const GroundGraph& graph, ThreadPool* pool,
                     ExecutionContext* context);

  /// Dispatches every wave in order; each component claims a "close_scc"
  /// checkpoint, seed-scans its members, and drains its local worklist.
  void RunWaves();
  void ProcessComponent(int32_t comp, std::vector<AtomId>* worklist);
  void Drain(int32_t comp, std::vector<AtomId>* worklist);

  /// The close events, parameterized by the draining component: effects on
  /// nodes of `comp` are pushed onto `worklist`; effects on other (always
  /// later-wave) components are applied eagerly and left for that
  /// component's seed scan.
  void FireRule(int32_t rule, int32_t comp, std::vector<AtomId>* worklist);
  void KillRule(int32_t rule, int32_t comp, std::vector<AtomId>* worklist);
  void DecPending(int32_t rule, int32_t comp, std::vector<AtomId>* worklist);
  void DecSupport(AtomId atom, int32_t comp, std::vector<AtomId>* worklist);
  /// Records a won CAS on `atom`: bumps the assigned count and schedules
  /// the consumer walk (push if `atom` is in `comp`, defer otherwise).
  void DidAssign(AtomId atom, int32_t comp, std::vector<AtomId>* worklist);

  int32_t ComponentOfAtom(AtomId a) const { return schedule_.scc.component[a]; }
  int32_t ComponentOfRule(int32_t r) const {
    return schedule_.scc.component[graph_->num_atoms() + r];
  }

  const GroundGraph* graph_;
  ThreadPool* pool_;             // not owned
  ExecutionContext* exec_;       // not owned; null = ungoverned
  SccSchedule schedule_;

  std::unique_ptr<AtomicTruth[]> value_;
  /// 1 once the atom's consumer walk has been scheduled (pushed onto some
  /// component worklist); guards against double propagation.
  std::unique_ptr<std::atomic<char>[]> propagated_;
  std::unique_ptr<std::atomic<char>[]> rule_dead_;
  std::unique_ptr<std::atomic<int32_t>[]> rule_pending_;
  std::unique_ptr<std::atomic<int32_t>[]> atom_support_;
  std::atomic<int32_t> num_assigned_{0};
  /// Per-worker local worklists, reused across components and waves.
  std::vector<std::vector<AtomId>> scratch_;
};

}  // namespace tiebreak

#endif  // TIEBREAK_GROUND_PARALLEL_CLOSE_H_
