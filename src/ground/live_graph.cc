#include "ground/live_graph.h"

namespace tiebreak {

LiveGraph BuildLiveGraph(const CloseState& state) {
  const GroundGraph& ground = state.graph();
  LiveGraph live;
  live.atom_node.assign(ground.num_atoms(), -1);

  for (AtomId a = 0; a < ground.num_atoms(); ++a) {
    if (!state.AtomLive(a)) continue;
    live.atom_node[a] = static_cast<int32_t>(live.node_atom.size());
    live.node_atom.push_back(a);
    live.node_rule.push_back(-1);
  }
  live.num_atom_nodes = static_cast<int32_t>(live.node_atom.size());

  std::vector<int32_t> rule_node(ground.num_rules(), -1);
  for (int32_t r = 0; r < ground.num_rules(); ++r) {
    if (!state.RuleLive(r)) continue;
    rule_node[r] = static_cast<int32_t>(live.node_atom.size());
    live.node_atom.push_back(-1);
    live.node_rule.push_back(r);
  }

  live.graph = SignedDigraph(static_cast<int32_t>(live.node_atom.size()));
  for (int32_t r = 0; r < ground.num_rules(); ++r) {
    if (rule_node[r] < 0) continue;
    // A live rule's body atoms are either live or deleted-satisfied; only
    // live ones still carry edges.
    for (AtomId a : ground.PositiveBody(r)) {
      if (live.atom_node[a] >= 0) {
        live.graph.AddEdge(live.atom_node[a], rule_node[r], false);
      }
    }
    for (AtomId a : ground.NegativeBody(r)) {
      if (live.atom_node[a] >= 0) {
        live.graph.AddEdge(live.atom_node[a], rule_node[r], true);
      }
    }
    // Head edge; the head may itself already be true (deleted), in which
    // case the rule node is a sink.
    const AtomId head = ground.HeadOf(r);
    if (live.atom_node[head] >= 0) {
      live.graph.AddEdge(rule_node[r], live.atom_node[head], false);
    }
  }
  live.graph.Finalize();
  return live;
}

}  // namespace tiebreak
