#include "ground/ground_scc.h"

#include <algorithm>

namespace tiebreak {

SccResult ComputeGroundScc(const GroundGraph& graph,
                           const GroundLiveness& live) {
  TIEBREAK_CHECK(graph.finalized());
  return ComputeSccOver(GroundAdjacency{&graph, live});
}

namespace {

// Enumerates the live edges of the (restricted) ground graph once:
// fn(from_node, to_node) per edge, rule nodes offset by num_atoms. Same
// edge multiset as the materialized live graph (duplicate body occurrences
// included), which keeps external_in_degree counts identical.
template <typename Fn>
void ForEachLiveEdge(const GroundGraph& graph, const GroundLiveness& live,
                     Fn&& fn) {
  const int32_t num_atoms = graph.num_atoms();
  for (int32_t r = 0; r < graph.num_rules(); ++r) {
    if (!live.RuleAlive(r)) continue;
    const int32_t rule_node = num_atoms + r;
    for (AtomId a : graph.PositiveBody(r)) {
      if (live.AtomLive(a)) fn(a, rule_node);
    }
    for (AtomId a : graph.NegativeBody(r)) {
      if (live.AtomLive(a)) fn(a, rule_node);
    }
    const AtomId head = graph.HeadOf(r);
    if (live.AtomLive(head)) fn(rule_node, head);
  }
}

}  // namespace

Condensation CondenseGroundScc(const GroundGraph& graph, const SccResult& scc,
                               const GroundLiveness& live) {
  Condensation cond;
  cond.external_in_degree.assign(scc.num_components, 0);
  cond.has_internal_edge.assign(scc.num_components, 0);
  ForEachLiveEdge(graph, live, [&](int32_t from, int32_t to) {
    const int32_t from_comp = scc.component[from];
    const int32_t to_comp = scc.component[to];
    if (from_comp == to_comp) {
      cond.has_internal_edge[to_comp] = 1;
    } else {
      ++cond.external_in_degree[to_comp];
    }
  });
  return cond;
}

SccSchedule BuildSccSchedule(const GroundGraph& graph,
                             const GroundLiveness& live) {
  SccSchedule schedule;
  schedule.scc = ComputeGroundScc(graph, live);
  const SccResult& scc = schedule.scc;
  schedule.wave.assign(scc.num_components, 0);
  if (scc.num_components == 0) {
    schedule.wave_offset.assign(1, 0);
    return schedule;
  }

  // Longest-path leveling in one pass: component ids descending is a
  // topological order (cross edges go from larger to smaller ids), so by
  // the time a component is processed every edge *into* it has been
  // relaxed and its wave is final; relaxing its out-edges then finalizes
  // successors-to-be. Cross edges only — internal edges stay inside one
  // wave by definition.
  int32_t num_waves = 1;
  const GroundAdjacency adj{&graph, live};
  for (int32_t comp = scc.num_components - 1; comp >= 0; --comp) {
    const int32_t next_wave = schedule.wave[comp] + 1;
    for (int32_t node : scc.members[comp]) {
      GroundAdjacency::Cursor cursor = adj.FirstEdge(node);
      int32_t w;
      while ((w = adj.NextNeighbor(node, cursor)) >= 0) {
        const int32_t to_comp = scc.component[w];
        if (to_comp == comp) continue;
        if (schedule.wave[to_comp] < next_wave) {
          schedule.wave[to_comp] = next_wave;
          num_waves = std::max(num_waves, next_wave + 1);
        }
      }
    }
  }

  // Bucket components by wave, descending id within each wave (the serial
  // reference order; see header).
  schedule.wave_offset.assign(num_waves + 1, 0);
  for (int32_t comp = 0; comp < scc.num_components; ++comp) {
    ++schedule.wave_offset[schedule.wave[comp] + 1];
  }
  for (int32_t w = 0; w < num_waves; ++w) {
    schedule.wave_offset[w + 1] += schedule.wave_offset[w];
  }
  schedule.order.resize(scc.num_components);
  std::vector<int32_t> cursor(schedule.wave_offset.begin(),
                              schedule.wave_offset.end() - 1);
  for (int32_t comp = scc.num_components - 1; comp >= 0; --comp) {
    schedule.order[cursor[schedule.wave[comp]]++] = comp;
  }
  return schedule;
}

GroundTieCheck CheckGroundTie(const GroundGraph& graph, const SccResult& scc,
                              int32_t comp, const GroundLiveness& live,
                              std::vector<int32_t>* local_scratch) {
  const std::vector<int32_t>& members = scc.members[comp];
  TIEBREAK_CHECK(!members.empty());
  std::vector<int32_t>& local = *local_scratch;
  TIEBREAK_CHECK_GE(static_cast<int32_t>(local.size()),
                    graph.num_atoms() + graph.num_rules());
  const int32_t size = static_cast<int32_t>(members.size());
  for (int32_t i = 0; i < size; ++i) local[members[i]] = i;

  const int32_t num_atoms = graph.num_atoms();
  // Internal signed out-edges of one member node. BFS order is free here
  // (parity relative to the root is unique when the component is sign-
  // consistent, and any inconsistency fails the verification pass), so no
  // merged walk is needed — positives then negatives is fine.
  auto for_internal_out = [&](int32_t node, auto&& fn) {
    if (node < num_atoms) {
      for (int32_t r : graph.PositiveConsumers(node)) {
        if (live.RuleAlive(r) && scc.component[num_atoms + r] == comp) {
          fn(num_atoms + r, /*negative=*/false);
        }
      }
      for (int32_t r : graph.NegativeConsumers(node)) {
        if (live.RuleAlive(r) && scc.component[num_atoms + r] == comp) {
          fn(num_atoms + r, /*negative=*/true);
        }
      }
    } else {
      const AtomId head = graph.HeadOf(node - num_atoms);
      if (live.AtomLive(head) && scc.component[head] == comp) {
        fn(static_cast<int32_t>(head), /*negative=*/false);
      }
    }
  };

  GroundTieCheck result;
  result.side.assign(size, 0);
  std::vector<char> visited(size, 0);
  std::vector<int32_t> queue;
  queue.reserve(size);
  queue.push_back(members.front());
  visited[local[members.front()]] = 1;
  for (size_t head = 0; head < queue.size(); ++head) {
    const int32_t v = queue[head];
    const char v_side = result.side[local[v]];
    for_internal_out(v, [&](int32_t w, bool negative) {
      const int32_t w_local = local[w];
      if (visited[w_local]) return;
      visited[w_local] = 1;
      result.side[w_local] = static_cast<char>(v_side ^ (negative ? 1 : 0));
      queue.push_back(w);
    });
  }
  // Strong connectivity of the component guarantees full coverage.
  for (char v : visited) TIEBREAK_CHECK(v) << "SCC not strongly connected";

  // Verify every internal edge against the parity partition (Lemma 1).
  result.is_tie = true;
  for (int32_t v : members) {
    if (!result.is_tie) break;
    const char v_side = result.side[local[v]];
    for_internal_out(v, [&](int32_t w, bool negative) {
      const char expected = static_cast<char>(v_side ^ (negative ? 1 : 0));
      if (result.side[local[w]] != expected) result.is_tie = false;
    });
  }

  for (int32_t node : members) local[node] = -1;
  return result;
}

}  // namespace tiebreak
