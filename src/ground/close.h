// The close(M, G) procedure of Section 2, implemented as a *persistent*
// propagation state: because close is monotone (atoms only gain truth
// values, nodes are only ever deleted), one CloseState instance serves a
// whole interpreter run — each SetAndClose() continues from the current
// graph, and the total work over a run is O(edges).
//
// The four rewrite rules of the paper map to worklist events:
//   atom a true   -> delete a; kill rules with a negative arc (a, r);
//                    positive arcs (a, r) disappear (pending--).
//   atom a false  -> delete a; kill rules with a positive arc (a, r);
//                    negative arcs (a, r) disappear (pending--).
//   rule r with no incoming edges (pending == 0) -> head := true, delete r.
//   atom a with no incoming edges (support == 0) -> a := false.
//
// Confluence (the paper: "these are uniquely determined, independent of the
// order") is exercised by randomized-order tests in ground_test.cc.
#ifndef TIEBREAK_GROUND_CLOSE_H_
#define TIEBREAK_GROUND_CLOSE_H_

#include <utility>
#include <vector>

#include "ground/ground_graph.h"
#include "ground/truth.h"
#include "lang/database.h"
#include "lang/program.h"

namespace tiebreak {

class ExecutionContext;

/// Persistent close(M, G) state over one ground graph.
///
/// Resource governance: with a non-null context, Drain checkpoints every
/// 256 worklist pops and LargestUnfoundedSet every 256 queue pops. On a
/// trip, Drain stops between pops — every value assigned so far stays
/// sound (close is monotone: each assignment was forced by the rules), the
/// remaining worklist is simply not propagated — and LargestUnfoundedSet
/// returns an empty set (a partial simulation proves nothing about
/// unfoundedness). Callers distinguish a trip from completion through the
/// context's status.
class CloseState {
 public:
  /// Starts from the paper's initial model M0(Δ): atoms listed in Δ are
  /// true, EDB atoms not in Δ are false, IDB atoms not in Δ are undefined —
  /// then runs the initial close to fixpoint. M0 is built bulk-first: one
  /// scan over Δ's columnar relations with atom-store hash lookups, then
  /// one pass over the EDB atoms — no per-atom Database::Contains, no
  /// materialized Tuples.
  CloseState(const Program& program, const Database& database,
             const GroundGraph& graph, ExecutionContext* context = nullptr);

  /// Starts from an explicit initial assignment (Truth per AtomId; kUndef
  /// entries stay open) and closes. Used by the stable-model check's
  /// close(M⁻, G) and by tests.
  CloseState(const GroundGraph& graph, const std::vector<Truth>& initial,
             ExecutionContext* context = nullptr);

  /// Assigns `value` to the live atom `atom` and propagates to fixpoint.
  void SetAndClose(AtomId atom, bool value) {
    Assign(atom, value ? Truth::kTrue : Truth::kFalse);
    Drain();
  }

  /// Assigns a batch (all atoms must be live), then propagates once.
  void SetAndClose(const std::vector<std::pair<AtomId, bool>>& assignments) {
    for (const auto& [atom, value] : assignments) {
      Assign(atom, value ? Truth::kTrue : Truth::kFalse);
    }
    Drain();
  }

  Truth Value(AtomId atom) const {
    TIEBREAK_CHECK_GE(atom, 0);
    TIEBREAK_CHECK_LT(atom, graph_->num_atoms());
    return value_[atom];
  }
  bool AtomLive(AtomId atom) const { return Value(atom) == Truth::kUndef; }
  bool RuleLive(int32_t rule) const { return rule_dead_[rule] == 0; }

  int32_t num_live_atoms() const { return num_live_atoms_; }
  bool IsTotal() const { return num_live_atoms_ == 0; }

  /// Ascending ids of atoms still in the graph (undefined).
  std::vector<AtomId> LiveAtoms() const;
  /// Ascending ids of rule nodes still in the graph.
  std::vector<int32_t> LiveRules() const;

  /// The largest unfounded set Atoms[close(M, G+)] of the *current* state:
  /// simulates close over the positive-edge subgraph of the live graph and
  /// returns the atoms left without a value (Section 2). Empty result means
  /// the well-founded interpreter is done (or stuck on ties).
  std::vector<AtomId> LargestUnfoundedSet() const;

  /// The full assignment so far (by AtomId).
  const std::vector<Truth>& values() const { return value_; }

  /// Per-rule deleted flags (1 = node removed from the graph). Borrowed by
  /// GroundLiveness to restrict SCC/tie passes to the live subgraph.
  const std::vector<char>& rule_dead() const { return rule_dead_; }

  const GroundGraph& graph() const { return *graph_; }

 private:
  void Assign(AtomId atom, Truth value);
  void Drain();
  void KillRule(int32_t rule);
  void DecPending(int32_t rule);
  void DecSupport(AtomId atom);
  void InitialClose();

  const GroundGraph* graph_;
  ExecutionContext* exec_ = nullptr;  // not owned; null = ungoverned
  std::vector<Truth> value_;
  std::vector<char> rule_dead_;
  std::vector<int32_t> rule_pending_;  // unresolved body edges per rule
  std::vector<int32_t> atom_support_;  // live rules with this head
  std::vector<AtomId> worklist_;       // freshly assigned atoms
  int32_t num_live_atoms_ = 0;
};

}  // namespace tiebreak

#endif  // TIEBREAK_GROUND_CLOSE_H_
