#include "ground/close.h"

#include "ground/unfounded.h"
#include "util/execution_context.h"

namespace tiebreak {

namespace {
// Worklist pops between resource checkpoints in Drain and
// LargestUnfoundedSet; each pop is a few cache lines of CSR arc work.
constexpr int32_t kClosePollBlock = 256;
}  // namespace

namespace {

// Shared constructor prologue: per-rule pending counters (unresolved body
// edges) and per-atom support counters (live rules per head), straight off
// the CSR arenas.
void InitCounters(const GroundGraph& graph, std::vector<int32_t>* pending,
                  std::vector<int32_t>* support) {
  pending->assign(graph.num_rules(), 0);
  support->assign(graph.num_atoms(), 0);
  for (int32_t r = 0; r < graph.num_rules(); ++r) {
    (*pending)[r] = graph.BodySize(r);
    ++(*support)[graph.HeadOf(r)];
  }
}

}  // namespace

CloseState::CloseState(const Program& program, const Database& database,
                       const GroundGraph& graph, ExecutionContext* context)
    : graph_(&graph), exec_(context) {
  TIEBREAK_CHECK(graph.finalized());
  const int32_t n = graph.num_atoms();
  value_.assign(n, Truth::kUndef);
  num_live_atoms_ = n;
  rule_dead_.assign(graph.num_rules(), 0);
  InitCounters(graph, &rule_pending_, &atom_support_);
  // M0(Δ), bulk: Δ atoms true (one DeltaAtomMask scan over the columnar
  // relations), then EDB atoms outside Δ false (one pass over the flat
  // predicate array; EDB atoms exist as nodes only in faithful graphs).
  const std::vector<char> in_delta = DeltaAtomMask(database, graph.atoms());
  std::vector<char> is_edb(program.num_predicates(), 0);
  for (PredId p = 0; p < program.num_predicates(); ++p) {
    is_edb[p] = program.IsEdb(p) ? 1 : 0;
  }
  for (AtomId a = 0; a < n; ++a) {
    if (in_delta[a]) {
      Assign(a, Truth::kTrue);
    } else if (is_edb[graph.atoms().PredicateOf(a)]) {
      Assign(a, Truth::kFalse);
    }
  }
  InitialClose();
}

CloseState::CloseState(const GroundGraph& graph,
                       const std::vector<Truth>& initial,
                       ExecutionContext* context)
    : graph_(&graph), exec_(context) {
  TIEBREAK_CHECK(graph.finalized());
  const int32_t n = graph.num_atoms();
  TIEBREAK_CHECK_EQ(static_cast<int32_t>(initial.size()), n);
  value_.assign(n, Truth::kUndef);
  num_live_atoms_ = n;
  rule_dead_.assign(graph.num_rules(), 0);
  InitCounters(graph, &rule_pending_, &atom_support_);
  for (AtomId a = 0; a < n; ++a) {
    if (initial[a] != Truth::kUndef) Assign(a, initial[a]);
  }
  InitialClose();
}

void CloseState::InitialClose() {
  // Empty-body rule nodes have no incoming edges: they fire immediately.
  for (int32_t r = 0; r < graph_->num_rules(); ++r) {
    if (!rule_dead_[r] && rule_pending_[r] == 0) {
      rule_dead_[r] = 1;
      const AtomId head = graph_->HeadOf(r);
      if (value_[head] == Truth::kUndef) Assign(head, Truth::kTrue);
      TIEBREAK_CHECK(value_[head] == Truth::kTrue)
          << "empty-body rule with false head";
      DecSupport(head);
    }
  }
  // Atoms with no incoming edges are false.
  for (AtomId a = 0; a < graph_->num_atoms(); ++a) {
    if (atom_support_[a] == 0 && value_[a] == Truth::kUndef) {
      Assign(a, Truth::kFalse);
    }
  }
  Drain();
}

void CloseState::Assign(AtomId atom, Truth value) {
  TIEBREAK_CHECK(value != Truth::kUndef);
  TIEBREAK_CHECK(value_[atom] == Truth::kUndef)
      << "atom " << atom << " assigned twice";
  value_[atom] = value;
  --num_live_atoms_;
  worklist_.push_back(atom);
}

void CloseState::Drain() {
  int32_t drained = 0;
  while (!worklist_.empty()) {
    // A trip stops between pops: every assignment made so far was forced
    // (close is monotone), so the partial state stays sound; the remaining
    // worklist entries are left unpropagated and the caller reads the trip
    // from the context.
    if (exec_ != nullptr && (++drained & (kClosePollBlock - 1)) == 0 &&
        !exec_->Checkpoint("close", kClosePollBlock).ok()) {
      return;
    }
    const AtomId atom = worklist_.back();
    worklist_.pop_back();
    const bool is_true = value_[atom] == Truth::kTrue;
    // Deleting the atom removes its outgoing body arcs; arcs whose sign
    // matches the value leave satisfied rules (pending--), the others kill
    // their rule node.
    for (int32_t r : graph_->PositiveConsumers(atom)) {
      if (is_true) {
        DecPending(r);
      } else {
        KillRule(r);
      }
    }
    for (int32_t r : graph_->NegativeConsumers(atom)) {
      if (is_true) {
        KillRule(r);
      } else {
        DecPending(r);
      }
    }
  }
}

void CloseState::KillRule(int32_t rule) {
  if (rule_dead_[rule]) return;
  rule_dead_[rule] = 1;
  DecSupport(graph_->HeadOf(rule));
}

void CloseState::DecPending(int32_t rule) {
  if (rule_dead_[rule]) return;
  if (--rule_pending_[rule] > 0) return;
  // No incoming edges left: the rule fires and is deleted.
  rule_dead_[rule] = 1;
  const AtomId head = graph_->HeadOf(rule);
  if (value_[head] == Truth::kUndef) {
    Assign(head, Truth::kTrue);
  } else {
    TIEBREAK_CHECK(value_[head] == Truth::kTrue)
        << "fired rule for an atom already false";
  }
  DecSupport(head);
}

void CloseState::DecSupport(AtomId atom) {
  if (--atom_support_[atom] > 0) return;
  if (value_[atom] == Truth::kUndef) Assign(atom, Truth::kFalse);
}

std::vector<AtomId> CloseState::LiveAtoms() const {
  std::vector<AtomId> live;
  for (AtomId a = 0; a < graph_->num_atoms(); ++a) {
    if (value_[a] == Truth::kUndef) live.push_back(a);
  }
  return live;
}

std::vector<int32_t> CloseState::LiveRules() const {
  std::vector<int32_t> live;
  for (int32_t r = 0; r < graph_->num_rules(); ++r) {
    if (!rule_dead_[r]) live.push_back(r);
  }
  return live;
}

std::vector<AtomId> CloseState::LargestUnfoundedSet() const {
  // close over G+ is confluent, so the shared batched simulation returns
  // the same (unique) set the original in-place loop did, with the same
  // number of queue pops and therefore the same checkpoint count.
  return SimulateUnfoundedSet(
      *graph_, [this](AtomId a) { return value_[a]; },
      [this](int32_t r) { return rule_dead_[r] != 0; },
      [this](AtomId a) { return atom_support_[a]; }, exec_);
}

}  // namespace tiebreak
